package synth

import (
	"math"
	"testing"

	"avdb/internal/codec"
	"avdb/internal/media"
)

func TestVideoPatterns(t *testing.T) {
	for _, p := range []Pattern{PatternGradient, PatternBars, PatternMotion, PatternNoise, PatternChecker} {
		v := Video(media.TypeRawVideo30, p, 32, 24, 8, 5, 1)
		if v.NumFrames() != 5 || v.Width() != 32 || v.Height() != 24 {
			t.Errorf("%v: shape wrong", p)
		}
		// Frames are not all zero.
		f, _ := v.Frame(0)
		var sum int
		for _, px := range f.Pix {
			sum += int(px)
		}
		if sum == 0 {
			t.Errorf("%v: black frame", p)
		}
	}
	if PatternMotion.String() != "motion" || Pattern(99).String() != "Pattern(99)" {
		t.Error("pattern names wrong")
	}
}

func TestVideoDeterministic(t *testing.T) {
	a := Video(media.TypeRawVideo30, PatternNoise, 16, 16, 8, 3, 42)
	b := Video(media.TypeRawVideo30, PatternNoise, 16, 16, 8, 3, 42)
	if !a.Equal(b) {
		t.Error("same seed produced different video")
	}
	c := Video(media.TypeRawVideo30, PatternNoise, 16, 16, 8, 3, 43)
	if a.Equal(c) {
		t.Error("different seeds produced identical noise")
	}
}

func TestVideoDepth24(t *testing.T) {
	v := Video(media.TypeRawVideo30, PatternGradient, 16, 8, 24, 1, 0)
	f, _ := v.Frame(0)
	if len(f.Pix) != 16*8*3 {
		t.Error("24-bit layout wrong")
	}
}

func TestMotionPatternMoves(t *testing.T) {
	v := Video(media.TypeRawVideo30, PatternMotion, 64, 48, 8, 30, 0)
	f0, _ := v.Frame(0)
	f15, _ := v.Frame(15)
	if f0.Equal(f15) {
		t.Error("motion pattern static")
	}
	// Motion content should inter-code much better than noise.
	mv, _ := codec.MPEG.Encode(v)
	nv, _ := codec.MPEG.Encode(Video(media.TypeRawVideo30, PatternNoise, 64, 48, 8, 30, 0))
	if mv.Size() >= nv.Size() {
		t.Errorf("motion (%d) not smaller than noise (%d) under inter coding", mv.Size(), nv.Size())
	}
}

func TestAnimationRendering(t *testing.T) {
	a := NewAnimation(64, 48, 3, 7)
	if len(a.Balls) != 3 {
		t.Fatal("ball count wrong")
	}
	v := a.RenderVideo(media.TypeRawVideo30, 8, 20)
	if v.NumFrames() != 20 {
		t.Fatal("frame count wrong")
	}
	f0, _ := v.Frame(0)
	f10, _ := v.Frame(10)
	if f0.Equal(f10) {
		t.Error("animation static")
	}
	// Balls stay in the box: every ball remains within bounds.
	for _, b := range a.Balls {
		if b.X < 0 || b.X > 64 || b.Y < 0 || b.Y > 48 {
			t.Errorf("ball escaped: %+v", b)
		}
	}
}

func TestSubtitles(t *testing.T) {
	v, err := Subtitles([]string{"line one", "line two", "line three"}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumCues() != 3 || v.NumElements() != 6000 {
		t.Errorf("cues=%d ticks=%d", v.NumCues(), v.NumElements())
	}
	if c, ok := v.CueAt(2500); !ok || c.Text != "line two" {
		t.Errorf("CueAt(2500) = %v, %v", c, ok)
	}
	if _, ok := v.CueAt(1999); ok {
		t.Error("gap tick has a cue")
	}
	if _, err := Subtitles([]string{"x"}, 1); err == nil {
		t.Error("too-short duration accepted")
	}
}

func TestTone(t *testing.T) {
	a, err := Tone(media.AudioQualityCD, 440, 0.5, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumSamples() != 22050 || a.Channels() != 2 {
		t.Errorf("shape: %d samples, %d ch", a.NumSamples(), a.Channels())
	}
	// RMS of a sine at amplitude 0.8*30000 is about 24000/sqrt(2).
	s, _ := a.Samples(0, a.NumSamples())
	var sum float64
	for _, v := range s {
		sum += float64(v) * float64(v)
	}
	rms := math.Sqrt(sum / float64(len(s)))
	if math.Abs(rms-24000/math.Sqrt2) > 500 {
		t.Errorf("RMS = %.0f", rms)
	}
	if _, err := Tone(media.AudioQualityUnspecified, 440, 1, 1); err == nil {
		t.Error("unspecified quality accepted")
	}
	if _, err := Tone(media.AudioQualityCD, 440, 1, 2); err == nil {
		t.Error("amplitude 2 accepted")
	}
}

func TestSpeech(t *testing.T) {
	a, err := Speech(media.AudioQualityVoice, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumSamples() != 16000 || a.Channels() != 1 {
		t.Errorf("shape: %d samples, %d ch", a.NumSamples(), a.Channels())
	}
	// Deterministic.
	b, _ := Speech(media.AudioQualityVoice, 2, 5)
	if !a.Equal(b) {
		t.Error("speech not deterministic")
	}
	// Has both sound and silence.
	s, _ := a.Samples(0, a.NumSamples())
	var loud, quiet int
	for _, v := range s {
		if v > 2000 || v < -2000 {
			loud++
		}
		if v == 0 {
			quiet++
		}
	}
	if loud == 0 || quiet == 0 {
		t.Errorf("speech envelope wrong: loud=%d quiet=%d", loud, quiet)
	}
	if _, err := Speech(media.AudioQualityUnspecified, 1, 0); err == nil {
		t.Error("unspecified quality accepted")
	}
}

func TestNoteFreq(t *testing.T) {
	if got := NoteFreq(69); math.Abs(got-440) > 1e-9 {
		t.Errorf("A4 = %v", got)
	}
	if got := NoteFreq(60); math.Abs(got-261.625) > 0.01 {
		t.Errorf("C4 = %v", got)
	}
	if got := NoteFreq(81); math.Abs(got-880) > 1e-9 {
		t.Errorf("A5 = %v", got)
	}
}

func TestJingleAndValidate(t *testing.T) {
	seq := Jingle(3000, 11)
	if seq.DurMS != 3000 || len(seq.Events) == 0 {
		t.Fatal("jingle empty")
	}
	if err := seq.Validate(); err != nil {
		t.Fatal(err)
	}
	// Note-ons and note-offs pair up.
	var on, off int
	for _, e := range seq.Events {
		if e.Velocity > 0 {
			on++
		} else {
			off++
		}
	}
	if on != off {
		t.Errorf("unbalanced events: %d on, %d off", on, off)
	}
	// Deterministic.
	seq2 := Jingle(3000, 11)
	if len(seq2.Events) != len(seq.Events) {
		t.Error("jingle not deterministic")
	}

	bad := &MIDISequence{DurMS: 100, Events: []MIDIEvent{{TickMS: 50, Note: 200, Velocity: 1}}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range note accepted")
	}
	bad = &MIDISequence{DurMS: 100, Events: []MIDIEvent{
		{TickMS: 50, Note: 60, Velocity: 1}, {TickMS: 20, Note: 60, Velocity: 0}}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-order events accepted")
	}
	bad = &MIDISequence{DurMS: 100, Events: []MIDIEvent{{TickMS: 500, Note: 60, Velocity: 1}}}
	if err := bad.Validate(); err == nil {
		t.Error("event past end accepted")
	}
}

func TestSynthesize(t *testing.T) {
	seq := &MIDISequence{
		DurMS: 1000,
		Events: []MIDIEvent{
			{TickMS: 0, Note: 69, Velocity: 100},
			{TickMS: 500, Note: 69, Velocity: 0},
		},
	}
	a, err := Synthesize(seq, media.AudioQualityFM)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumSamples() != 22050 || a.Type() != media.TypeFMAudio {
		t.Errorf("shape wrong: %v", a)
	}
	s, _ := a.Samples(0, a.NumSamples())
	// Sound during the note, silence after.
	var during, after float64
	for i := 2000; i < 10000; i++ {
		during += math.Abs(float64(s[i*2]))
	}
	for i := 12000; i < 22000; i++ {
		after += math.Abs(float64(s[i*2]))
	}
	if during < 1000*8000 {
		t.Errorf("note too quiet: %v", during/8000)
	}
	if after != 0 {
		t.Errorf("audio after note off: %v", after)
	}
	// A jingle synthesizes end to end.
	if _, err := Synthesize(Jingle(2000, 3), media.AudioQualityCD); err != nil {
		t.Fatal(err)
	}
	// Invalid sequences are rejected.
	bad := &MIDISequence{DurMS: 10, Events: []MIDIEvent{{TickMS: 50, Note: 60, Velocity: 1}}}
	if _, err := Synthesize(bad, media.AudioQualityCD); err == nil {
		t.Error("invalid sequence accepted")
	}
	if _, err := Synthesize(seq, media.AudioQualityUnspecified); err == nil {
		t.Error("unspecified quality accepted")
	}
}
