package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"avdb/internal/media"
)

// Tone generates a sine tone of the given frequency and duration at an
// audio quality's sampling parameters.
func Tone(q media.AudioQuality, freq float64, durSec float64, amplitude float64) (*media.AudioValue, error) {
	rate, ch, _ := q.Params()
	if rate.IsZero() {
		return nil, fmt.Errorf("synth: quality %v has no sampling parameters", q)
	}
	if amplitude < 0 || amplitude > 1 {
		return nil, fmt.Errorf("synth: amplitude %v outside [0,1]", amplitude)
	}
	a := media.NewAudioValue(q.Type(), ch)
	n := int(float64(rate.N) / float64(rate.D) * durSec)
	samples := make([]int16, n*ch)
	for i := 0; i < n; i++ {
		s := int16(amplitude * 30000 * math.Sin(2*math.Pi*freq*float64(i)*float64(rate.D)/float64(rate.N)))
		for c := 0; c < ch; c++ {
			samples[i*ch+c] = s
		}
	}
	if err := a.AppendSamples(samples); err != nil {
		return nil, err
	}
	return a, nil
}

// Speech generates speech-like audio: seeded bursts of band-limited noise
// with pauses, a stand-in for recorded narration on audio tracks.
func Speech(q media.AudioQuality, durSec float64, seed int64) (*media.AudioValue, error) {
	rate, ch, _ := q.Params()
	if rate.IsZero() {
		return nil, fmt.Errorf("synth: quality %v has no sampling parameters", q)
	}
	rng := rand.New(rand.NewSource(seed))
	a := media.NewAudioValue(q.Type(), ch)
	sampleRate := float64(rate.N) / float64(rate.D)
	n := int(sampleRate * durSec)
	samples := make([]int16, n*ch)
	// Syllable-like bursts: 80-250ms of filtered noise, 30-120ms gaps.
	i := 0
	var prev float64
	for i < n {
		burst := int(sampleRate * (0.08 + rng.Float64()*0.17))
		gap := int(sampleRate * (0.03 + rng.Float64()*0.09))
		pitch := 90 + rng.Float64()*120
		for k := 0; k < burst && i < n; k, i = k+1, i+1 {
			// Glottal-ish pulse train plus smoothed noise.
			t := float64(k) / sampleRate
			env := math.Sin(math.Pi * float64(k) / float64(burst))
			raw := 0.6*math.Sin(2*math.Pi*pitch*t) + 0.4*(rng.Float64()*2-1)
			prev = prev + 0.25*(raw-prev) // one-pole lowpass
			s := int16(env * prev * 12000)
			for c := 0; c < ch; c++ {
				samples[i*ch+c] = s
			}
		}
		i += gap
	}
	if err := a.AppendSamples(samples); err != nil {
		return nil, err
	}
	return a, nil
}

// MIDIEvent is one note event: velocity > 0 starts a note, velocity 0
// ends it.
type MIDIEvent struct {
	TickMS   int64 // milliseconds from sequence start
	Note     int   // MIDI note number, 0..127
	Velocity int   // 0..127; 0 = note off
}

// MIDISequence is a timed list of note events, the paper's "MIDI data"
// from which digital audio is synthesized on retrieval.
type MIDISequence struct {
	Events []MIDIEvent
	DurMS  int64
}

// Validate checks event ordering and ranges.
func (s *MIDISequence) Validate() error {
	var last int64
	for i, e := range s.Events {
		if e.TickMS < last {
			return fmt.Errorf("synth: MIDI event %d out of order", i)
		}
		last = e.TickMS
		if e.Note < 0 || e.Note > 127 || e.Velocity < 0 || e.Velocity > 127 {
			return fmt.Errorf("synth: MIDI event %d out of range", i)
		}
		if e.TickMS > s.DurMS {
			return fmt.Errorf("synth: MIDI event %d past sequence end", i)
		}
	}
	return nil
}

// NoteFreq returns the equal-temperament frequency of a MIDI note.
func NoteFreq(note int) float64 {
	return 440 * math.Pow(2, float64(note-69)/12)
}

// Jingle builds a seeded pentatonic melody of the given duration — test
// material for the MIDI source activity.
func Jingle(durMS int64, seed int64) *MIDISequence {
	rng := rand.New(rand.NewSource(seed))
	scale := []int{60, 62, 64, 67, 69, 72, 74, 76}
	seq := &MIDISequence{DurMS: durMS}
	t := int64(0)
	for t < durMS-200 {
		note := scale[rng.Intn(len(scale))]
		hold := int64(150 + rng.Intn(350))
		if t+hold > durMS {
			hold = durMS - t
		}
		seq.Events = append(seq.Events,
			MIDIEvent{TickMS: t, Note: note, Velocity: 64 + rng.Intn(63)},
			MIDIEvent{TickMS: t + hold, Note: note, Velocity: 0})
		t += hold + int64(rng.Intn(120))
	}
	sort.SliceStable(seq.Events, func(i, j int) bool { return seq.Events[i].TickMS < seq.Events[j].TickMS })
	return seq
}

// Synthesize renders a MIDI sequence to PCM audio at the given quality —
// additive sine synthesis with linear attack/release envelopes.
func Synthesize(seq *MIDISequence, q media.AudioQuality) (*media.AudioValue, error) {
	if err := seq.Validate(); err != nil {
		return nil, err
	}
	rate, ch, _ := q.Params()
	if rate.IsZero() {
		return nil, fmt.Errorf("synth: quality %v has no sampling parameters", q)
	}
	sampleRate := float64(rate.N) / float64(rate.D)
	n := int(sampleRate * float64(seq.DurMS) / 1000)
	mix := make([]float64, n)

	// Pair note-on events with their note-offs.
	type voice struct {
		note     int
		from, to int // sample bounds
		vel      float64
	}
	var voices []voice
	open := make(map[int]int) // note -> index into voices
	for _, e := range seq.Events {
		at := int(float64(e.TickMS) / 1000 * sampleRate)
		if e.Velocity > 0 {
			open[e.Note] = len(voices)
			voices = append(voices, voice{note: e.Note, from: at, to: n, vel: float64(e.Velocity) / 127})
		} else if vi, ok := open[e.Note]; ok {
			voices[vi].to = at
			delete(open, e.Note)
		}
	}
	attack := int(sampleRate * 0.01)
	release := int(sampleRate * 0.03)
	for _, v := range voices {
		freq := NoteFreq(v.note)
		for i := v.from; i < v.to && i < n; i++ {
			env := 1.0
			if d := i - v.from; d < attack {
				env = float64(d) / float64(attack)
			}
			if d := v.to - i; d < release {
				env = math.Min(env, float64(d)/float64(release))
			}
			t := float64(i-v.from) / sampleRate
			// Fundamental plus a soft second harmonic.
			mix[i] += v.vel * env * (math.Sin(2*math.Pi*freq*t) + 0.3*math.Sin(4*math.Pi*freq*t))
		}
	}
	a := media.NewAudioValue(q.Type(), ch)
	samples := make([]int16, n*ch)
	for i, m := range mix {
		s := int16(math.Max(-1, math.Min(1, m*0.3)) * 30000)
		for c := 0; c < ch; c++ {
			samples[i*ch+c] = s
		}
	}
	if err := a.AppendSamples(samples); err != nil {
		return nil, err
	}
	return a, nil
}
