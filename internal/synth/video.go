// Package synth is the capture substrate of the platform: it produces
// the digital audio and video material a 1993 studio would have captured
// from cameras, microphones and MIDI instruments.  Video comes from test
// patterns and a small animation renderer ("rendering video frames from
// animation data"); audio comes from tone generators and a MIDI
// synthesizer ("synthesizing digital audio from MIDI data"); subtitle
// tracks come from a timed-text generator.
//
// All generators are deterministic in their seeds so that every
// experiment in the repository is reproducible.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"avdb/internal/avtime"
	"avdb/internal/media"
)

// Pattern selects a video test pattern.
type Pattern int

// The video test patterns.
const (
	// PatternGradient is a static horizontal luminance ramp.
	PatternGradient Pattern = iota
	// PatternBars is static vertical bars in the spirit of SMPTE color
	// bars.
	PatternBars
	// PatternMotion is a gradient with a bright block orbiting the frame
	// — smooth content with localized motion, the friendliest case for
	// inter-frame coding.
	PatternMotion
	// PatternNoise is seeded white noise, the adversarial case for every
	// codec.
	PatternNoise
	// PatternChecker is a phase-animated checkerboard: full-frame motion.
	PatternChecker
)

var patternNames = [...]string{
	PatternGradient: "gradient",
	PatternBars:     "bars",
	PatternMotion:   "motion",
	PatternNoise:    "noise",
	PatternChecker:  "checker",
}

// String returns the pattern's name.
func (p Pattern) String() string {
	if p < 0 || int(p) >= len(patternNames) {
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
	return patternNames[p]
}

// Video generates frames of the given pattern.  Depth 8 produces
// luminance frames; deeper formats repeat the luminance across bytes.
func Video(typ *media.Type, pattern Pattern, w, h, depth, frames int, seed int64) *media.VideoValue {
	v := media.NewVideoValue(typ, w, h, depth)
	rng := rand.New(rand.NewSource(seed))
	bpp := depth / 8
	for i := 0; i < frames; i++ {
		f := media.NewFrame(w, h, depth)
		renderPattern(f, pattern, i, w, h, bpp, rng)
		if err := v.AppendFrame(f); err != nil {
			panic(err) // geometry is ours; cannot mismatch
		}
	}
	return v
}

func renderPattern(f *media.Frame, pattern Pattern, frame, w, h, bpp int, rng *rand.Rand) {
	switch pattern {
	case PatternGradient:
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				setLum(f, x, y, bpp, byte(x*255/w))
			}
		}
	case PatternBars:
		bars := []byte{235, 209, 184, 158, 133, 107, 82, 16}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				setLum(f, x, y, bpp, bars[x*len(bars)/w])
			}
		}
	case PatternMotion:
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				setLum(f, x, y, bpp, byte(x*255/w))
			}
		}
		// A block orbiting the frame center.
		side := max(4, w/8)
		angle := float64(frame) * 2 * math.Pi / 60
		cx := w/2 + int(float64(w)/3*math.Cos(angle))
		cy := h/2 + int(float64(h)/3*math.Sin(angle))
		for dy := -side / 2; dy < side/2; dy++ {
			for dx := -side / 2; dx < side/2; dx++ {
				x, y := cx+dx, cy+dy
				if x >= 0 && x < w && y >= 0 && y < h {
					setLum(f, x, y, bpp, 255)
				}
			}
		}
	case PatternNoise:
		rng.Read(f.Pix)
	case PatternChecker:
		cell := max(2, w/16)
		phase := frame % (2 * cell)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				v := byte(32)
				if ((x+phase)/cell+y/cell)%2 == 0 {
					v = 224
				}
				setLum(f, x, y, bpp, v)
			}
		}
	}
}

func setLum(f *media.Frame, x, y, bpp int, v byte) {
	off := f.PixelOffset(x, y)
	for b := 0; b < bpp; b++ {
		f.Pix[off+b] = v
	}
}

// Ball is one body of an animation scene.
type Ball struct {
	X, Y   float64 // position in pixels
	VX, VY float64 // velocity in pixels per frame
	R      float64 // radius in pixels
	Shade  byte
}

// Animation is a minimal scene description: bodies bouncing in a box.
// It stands in for the paper's "animation data" from which video frames
// are rendered on demand.
type Animation struct {
	W, H  int
	Balls []Ball
}

// NewAnimation returns a scene with n seeded bouncing balls.
func NewAnimation(w, h, n int, seed int64) *Animation {
	rng := rand.New(rand.NewSource(seed))
	a := &Animation{W: w, H: h}
	for i := 0; i < n; i++ {
		r := float64(min(w, h)) / 10 * (0.5 + rng.Float64())
		a.Balls = append(a.Balls, Ball{
			X:     r + rng.Float64()*(float64(w)-2*r),
			Y:     r + rng.Float64()*(float64(h)-2*r),
			VX:    (rng.Float64() - 0.5) * float64(w) / 15,
			VY:    (rng.Float64() - 0.5) * float64(h) / 15,
			R:     r,
			Shade: byte(96 + rng.Intn(160)),
		})
	}
	return a
}

// Render advances the scene by one frame and rasterizes it.
func (a *Animation) Render(depth int) *media.Frame {
	f := media.NewFrame(a.W, a.H, depth)
	bpp := depth / 8
	for i := range a.Balls {
		b := &a.Balls[i]
		b.X += b.VX
		b.Y += b.VY
		if b.X < b.R || b.X > float64(a.W)-b.R {
			b.VX = -b.VX
			b.X += 2 * b.VX
		}
		if b.Y < b.R || b.Y > float64(a.H)-b.R {
			b.VY = -b.VY
			b.Y += 2 * b.VY
		}
	}
	for y := 0; y < a.H; y++ {
		for x := 0; x < a.W; x++ {
			for _, b := range a.Balls {
				dx, dy := float64(x)-b.X, float64(y)-b.Y
				if dx*dx+dy*dy <= b.R*b.R {
					setLum(f, x, y, bpp, b.Shade)
					break
				}
			}
		}
	}
	return f
}

// RenderVideo renders a sequence of frames from the animation.
func (a *Animation) RenderVideo(typ *media.Type, depth, frames int) *media.VideoValue {
	v := media.NewVideoValue(typ, a.W, a.H, depth)
	for i := 0; i < frames; i++ {
		if err := v.AppendFrame(a.Render(depth)); err != nil {
			panic(err)
		}
	}
	return v
}

// Subtitles builds a text stream from lines shown back to back, each for
// perLineTicks ticks (milliseconds) with a one-tick gap.
func Subtitles(lines []string, perLineTicks int64) (*media.TextStreamValue, error) {
	if perLineTicks <= 1 {
		return nil, fmt.Errorf("synth: per-line duration %d too short", perLineTicks)
	}
	total := perLineTicks * int64(len(lines))
	v := media.NewTextStreamValue(avtime.ObjectTime(total))
	for i, line := range lines {
		cue := media.Cue{
			At:   avtime.ObjectTime(int64(i) * perLineTicks),
			Dur:  avtime.ObjectTime(perLineTicks - 1),
			Text: line,
		}
		if err := v.AddCue(cue); err != nil {
			return nil, err
		}
	}
	return v, nil
}
