package schema

import (
	"fmt"
	"strings"
	"time"

	"avdb/internal/media"
	"avdb/internal/temporal"
)

// Datum is one attribute value: a tagged union over the attribute kinds.
// Scalar data participate in query predicates; media and tcomp data are
// retrieved by reference and bound to activities.
type Datum struct {
	kind AttrKind
	s    string
	i    int64
	f    float64
	b    bool
	t    time.Time
	m    media.Value
	tc   *temporal.Composite
}

// String returns a string datum.
func String(v string) Datum { return Datum{kind: KindString, s: v} }

// Int returns an integer datum.
func Int(v int64) Datum { return Datum{kind: KindInt, i: v} }

// Float returns a float datum.
func Float(v float64) Datum { return Datum{kind: KindFloat, f: v} }

// Bool returns a boolean datum.
func Bool(v bool) Datum { return Datum{kind: KindBool, b: v} }

// Date returns a date datum.  Date attributes hold calendar dates — the
// paper's "Date whenBroadcast" — so the value is truncated to its UTC
// day.
func Date(v time.Time) Datum {
	y, m, d := v.UTC().Date()
	return Datum{kind: KindDate, t: time.Date(y, m, d, 0, 0, 0, 0, time.UTC)}
}

// Media returns a media-valued datum.
func Media(v media.Value) Datum { return Datum{kind: KindMedia, m: v} }

// TComp returns a temporal-composite datum.
func TComp(c *temporal.Composite) Datum { return Datum{kind: KindTComp, tc: c} }

// Kind reports the datum's kind.
func (d Datum) Kind() AttrKind { return d.kind }

// Str returns the string value (zero unless KindString).
func (d Datum) Str() string { return d.s }

// IntVal returns the integer value (zero unless KindInt).
func (d Datum) IntVal() int64 { return d.i }

// FloatVal returns the float value (zero unless KindFloat).
func (d Datum) FloatVal() float64 { return d.f }

// BoolVal returns the boolean value (false unless KindBool).
func (d Datum) BoolVal() bool { return d.b }

// DateVal returns the date value (zero unless KindDate).
func (d Datum) DateVal() time.Time { return d.t }

// MediaVal returns the media value (nil unless KindMedia).
func (d Datum) MediaVal() media.Value { return d.m }

// TCompVal returns the temporal composite (nil unless KindTComp).
func (d Datum) TCompVal() *temporal.Composite { return d.tc }

// Equal reports whether two data are the same kind and value.  Media and
// tcomp data compare by identity.
func (d Datum) Equal(o Datum) bool {
	if d.kind != o.kind {
		return false
	}
	switch d.kind {
	case KindString:
		return d.s == o.s
	case KindInt:
		return d.i == o.i
	case KindFloat:
		return d.f == o.f
	case KindBool:
		return d.b == o.b
	case KindDate:
		return d.t.Equal(o.t)
	case KindMedia:
		return d.m == o.m
	case KindTComp:
		return d.tc == o.tc
	}
	return false
}

// Compare orders two data of the same comparable kind, returning -1, 0 or
// +1.  Media, tcomp and bool data are not ordered.
func (d Datum) Compare(o Datum) (int, error) {
	if d.kind != o.kind {
		return 0, fmt.Errorf("schema: comparing %v with %v", d.kind, o.kind)
	}
	switch d.kind {
	case KindString:
		return strings.Compare(d.s, o.s), nil
	case KindInt:
		switch {
		case d.i < o.i:
			return -1, nil
		case d.i > o.i:
			return 1, nil
		}
		return 0, nil
	case KindFloat:
		switch {
		case d.f < o.f:
			return -1, nil
		case d.f > o.f:
			return 1, nil
		}
		return 0, nil
	case KindDate:
		switch {
		case d.t.Before(o.t):
			return -1, nil
		case d.t.After(o.t):
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("schema: %v data are not ordered", d.kind)
}

// Contains reports whether a string datum contains the given substring,
// the data model's simple content predicate for keyword search.
func (d Datum) Contains(sub string) bool {
	return d.kind == KindString && strings.Contains(d.s, sub)
}

// Format renders the datum for display.
func (d Datum) Format() string {
	switch d.kind {
	case KindString:
		return fmt.Sprintf("%q", d.s)
	case KindInt:
		return fmt.Sprintf("%d", d.i)
	case KindFloat:
		return fmt.Sprintf("%g", d.f)
	case KindBool:
		return fmt.Sprintf("%t", d.b)
	case KindDate:
		return d.t.Format("2006-01-02")
	case KindMedia:
		if d.m == nil {
			return "<nil media>"
		}
		return fmt.Sprintf("<%s, %d elements>", d.m.Type().Name, d.m.NumElements())
	case KindTComp:
		if d.tc == nil {
			return "<nil tcomp>"
		}
		return fmt.Sprintf("<tcomp %s, %d tracks>", d.tc.Name(), d.tc.NumTracks())
	}
	return "<invalid>"
}
