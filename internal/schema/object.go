package schema

import (
	"fmt"
	"sort"
	"sync"

	"avdb/internal/media"
)

// OID identifies an object in a store.  Queries return OIDs, not values:
// "certain requests, such as queries, may return references (i.e., names
// or identifiers) to AV values rather than the values themselves" (§3.1).
type OID uint64

// String formats the OID.
func (o OID) String() string { return fmt.Sprintf("oid:%d", uint64(o)) }

// Object is a class instance.
type Object struct {
	oid   OID
	class *Class

	mu     sync.RWMutex
	fields map[string]Datum
}

// OID returns the object's identifier.
func (o *Object) OID() OID { return o.oid }

// Class returns the object's class.
func (o *Object) Class() *Class { return o.class }

// Set assigns an attribute, checking that the attribute exists and the
// datum matches its declared kind (including the media kind and the
// track layout of tcomp attributes).
func (o *Object) Set(name string, d Datum) error {
	attr, ok := o.class.Attr(name)
	if !ok {
		return fmt.Errorf("schema: class %s has no attribute %q", o.class.name, name)
	}
	if attr.Kind != d.Kind() {
		return fmt.Errorf("schema: attribute %s.%s is %v, got %v", o.class.name, name, attr.Kind, d.Kind())
	}
	switch attr.Kind {
	case KindMedia:
		if err := checkMedia(attr, d.MediaVal()); err != nil {
			return fmt.Errorf("schema: attribute %s.%s: %w", o.class.name, name, err)
		}
	case KindTComp:
		if err := checkTComp(attr, d); err != nil {
			return fmt.Errorf("schema: attribute %s.%s: %w", o.class.name, name, err)
		}
	}
	o.mu.Lock()
	o.fields[name] = d
	o.mu.Unlock()
	return nil
}

func checkMedia(attr AttrDef, v media.Value) error {
	if v == nil {
		return fmt.Errorf("nil media value")
	}
	if v.Type().Kind != attr.MediaKind {
		return fmt.Errorf("want %v value, got %v", attr.MediaKind, v.Type().Kind)
	}
	// Best-effort quality verification for values that expose geometry
	// (raw and encoded video both do).
	if !attr.VideoQuality.IsZero() {
		type geometry interface {
			Width() int
			Height() int
			Depth() int
		}
		if g, ok := v.(geometry); ok {
			got := media.VideoQuality{Width: g.Width(), Height: g.Height(), Depth: g.Depth(),
				FPS: int(v.Type().Rate.Hz())}
			if !got.AtLeast(attr.VideoQuality) {
				return fmt.Errorf("value quality %v below declared %v", got, attr.VideoQuality)
			}
		}
	}
	return nil
}

func checkTComp(attr AttrDef, d Datum) error {
	tc := d.TCompVal()
	if tc == nil {
		return fmt.Errorf("nil tcomp value")
	}
	for _, td := range attr.Tracks {
		track, ok := tc.Track(td.Name)
		if !ok {
			return fmt.Errorf("missing track %q", td.Name)
		}
		if track.Value.Type().Kind != td.MediaKind {
			return fmt.Errorf("track %q: want %v, got %v", td.Name, td.MediaKind, track.Value.Type().Kind)
		}
	}
	return nil
}

// Get returns an attribute's value.
func (o *Object) Get(name string) (Datum, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	d, ok := o.fields[name]
	return d, ok
}

// Fields returns the set attribute names, sorted.
func (o *Object) Fields() []string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	names := make([]string, 0, len(o.fields))
	for n := range o.fields {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// String summarizes the object.
func (o *Object) String() string {
	return fmt.Sprintf("%s(%v)", o.class.name, o.oid)
}

// Store holds class instances and assigns OIDs.
type Store struct {
	mu      sync.RWMutex
	nextOID OID
	objects map[OID]*Object
	byClass map[string][]OID
}

// NewStore returns an empty object store.
func NewStore() *Store {
	return &Store{nextOID: 1, objects: make(map[OID]*Object), byClass: make(map[string][]OID)}
}

// NewObject creates an instance of the class.
func (s *Store) NewObject(c *Class) *Object {
	s.mu.Lock()
	defer s.mu.Unlock()
	o := &Object{oid: s.nextOID, class: c, fields: make(map[string]Datum)}
	s.nextOID++
	s.objects[o.oid] = o
	s.byClass[c.name] = append(s.byClass[c.name], o.oid)
	return o
}

// RestoreObject recreates an object under a known OID, for recovery from
// a log.  The OID must not be live; the store's allocator is advanced
// past it.
func (s *Store) RestoreObject(c *Class, oid OID) (*Object, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, live := s.objects[oid]; live {
		return nil, fmt.Errorf("schema: OID %v already live", oid)
	}
	o := &Object{oid: oid, class: c, fields: make(map[string]Datum)}
	s.objects[oid] = o
	s.byClass[c.name] = append(s.byClass[c.name], oid)
	if oid >= s.nextOID {
		s.nextOID = oid + 1
	}
	return o, nil
}

// Get returns the object with the given OID.
func (s *Store) Get(oid OID) (*Object, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	o, ok := s.objects[oid]
	return o, ok
}

// Delete removes an object.  Deleting a missing OID is an error.
func (s *Store) Delete(oid OID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[oid]
	if !ok {
		return fmt.Errorf("schema: no object %v", oid)
	}
	delete(s.objects, oid)
	oids := s.byClass[o.class.name]
	for i, id := range oids {
		if id == oid {
			s.byClass[o.class.name] = append(oids[:i], oids[i+1:]...)
			break
		}
	}
	return nil
}

// Count reports the number of stored objects.
func (s *Store) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}

// OfClass returns the OIDs of the class's direct instances, in creation
// order.  With subclasses true it also includes instances of descendant
// classes (the class extent).
func (s *Store) OfClass(c *Class, subclasses bool) []OID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !subclasses {
		return append([]OID(nil), s.byClass[c.name]...)
	}
	var out []OID
	for _, oids := range s.byClass {
		for _, oid := range oids {
			if s.objects[oid].class.IsSubclassOf(c) {
				out = append(out, oid)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
