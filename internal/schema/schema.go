// Package schema implements the object-oriented data model of the AV
// database: class definitions with single inheritance, typed attributes
// including media-valued attributes with quality factors and tcomp
// (temporal composite) attributes, and an object store of class
// instances.
//
// It is the machinery behind the paper's class examples:
//
//	class SimpleNewscast {
//	    String     title
//	    String     broadcastSource
//	    String     keywords
//	    Date       whenBroadcast
//	    VideoValue videoTrack  quality 640x480x8@30
//	}
//
//	class Newscast {
//	    ...
//	    tcomp clip {
//	        VideoValue      videoTrack
//	        AudioValue      englishTrack
//	        AudioValue      frenchTrack
//	        TextStreamValue subtitleTrack
//	    }
//	}
package schema

import (
	"fmt"
	"sort"
	"sync"

	"avdb/internal/media"
)

// AttrKind is the kind of an attribute.
type AttrKind int

// The attribute kinds of the data model.
const (
	KindString AttrKind = iota
	KindInt
	KindFloat
	KindBool
	KindDate
	KindMedia // a media value of a declared media kind
	KindTComp // a temporal composite with declared tracks
)

var attrKindNames = [...]string{
	KindString: "String",
	KindInt:    "Int",
	KindFloat:  "Float",
	KindBool:   "Bool",
	KindDate:   "Date",
	KindMedia:  "Media",
	KindTComp:  "TComp",
}

// String returns the kind's name.
func (k AttrKind) String() string {
	if k < 0 || int(k) >= len(attrKindNames) {
		return fmt.Sprintf("AttrKind(%d)", int(k))
	}
	return attrKindNames[k]
}

// TrackDef declares one track of a tcomp attribute.
type TrackDef struct {
	Name      string
	MediaKind media.Kind
}

// AttrDef declares one attribute of a class.
type AttrDef struct {
	Name string
	Kind AttrKind

	// MediaKind constrains media attributes to video, audio, text or
	// image values.
	MediaKind media.Kind
	// VideoQuality is the optional quality factor of a video attribute,
	// the paper's "quality 640 x 480 x 8 @ 30".  Zero means unspecified:
	// "if absent, stored values can be of varying quality."
	VideoQuality media.VideoQuality
	// AudioQuality is the optional quality factor of an audio attribute.
	AudioQuality media.AudioQuality
	// Tracks declares the component tracks of a tcomp attribute.
	Tracks []TrackDef
}

// Class is a class definition with single inheritance.
type Class struct {
	name  string
	super *Class
	attrs []AttrDef
}

// Name returns the class name.
func (c *Class) Name() string { return c.name }

// Super returns the superclass, or nil.
func (c *Class) Super() *Class { return c.super }

// OwnAttrs returns the attributes declared by this class (not inherited).
func (c *Class) OwnAttrs() []AttrDef { return append([]AttrDef(nil), c.attrs...) }

// Attrs returns all attributes, inherited first, in declaration order.
func (c *Class) Attrs() []AttrDef {
	var out []AttrDef
	if c.super != nil {
		out = c.super.Attrs()
	}
	return append(out, c.attrs...)
}

// Attr looks an attribute up by name through the inheritance chain.
func (c *Class) Attr(name string) (AttrDef, bool) {
	for _, a := range c.attrs {
		if a.Name == name {
			return a, true
		}
	}
	if c.super != nil {
		return c.super.Attr(name)
	}
	return AttrDef{}, false
}

// IsSubclassOf reports whether c is o or a descendant of o.
func (c *Class) IsSubclassOf(o *Class) bool {
	for k := c; k != nil; k = k.super {
		if k == o {
			return true
		}
	}
	return false
}

// String returns the class name.
func (c *Class) String() string { return c.name }

// Schema is a registry of class definitions.
type Schema struct {
	mu      sync.RWMutex
	classes map[string]*Class
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{classes: make(map[string]*Class)}
}

// Define registers a class.  superName may be empty for a root class.
// Attribute names must be unique across the whole inheritance chain —
// shadowing an inherited attribute is an error, not an override.
func (s *Schema) Define(name, superName string, attrs []AttrDef) (*Class, error) {
	if name == "" {
		return nil, fmt.Errorf("schema: empty class name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.classes[name]; dup {
		return nil, fmt.Errorf("schema: class %q already defined", name)
	}
	var super *Class
	if superName != "" {
		var ok bool
		super, ok = s.classes[superName]
		if !ok {
			return nil, fmt.Errorf("schema: superclass %q of %q not defined", superName, name)
		}
	}
	seen := make(map[string]bool)
	if super != nil {
		for _, a := range super.Attrs() {
			seen[a.Name] = true
		}
	}
	for _, a := range attrs {
		if err := validateAttr(a); err != nil {
			return nil, fmt.Errorf("schema: class %q: %w", name, err)
		}
		if seen[a.Name] {
			return nil, fmt.Errorf("schema: class %q: duplicate attribute %q", name, a.Name)
		}
		seen[a.Name] = true
	}
	c := &Class{name: name, super: super, attrs: append([]AttrDef(nil), attrs...)}
	s.classes[name] = c
	return c, nil
}

func validateAttr(a AttrDef) error {
	if a.Name == "" {
		return fmt.Errorf("attribute without a name")
	}
	switch a.Kind {
	case KindString, KindInt, KindFloat, KindBool, KindDate:
		if len(a.Tracks) != 0 {
			return fmt.Errorf("attribute %q: tracks on a scalar attribute", a.Name)
		}
	case KindMedia:
		if !a.VideoQuality.IsZero() {
			if a.MediaKind != media.KindVideo {
				return fmt.Errorf("attribute %q: video quality on %v attribute", a.Name, a.MediaKind)
			}
			if !a.VideoQuality.Valid() {
				return fmt.Errorf("attribute %q: invalid quality %v", a.Name, a.VideoQuality)
			}
		}
		if a.AudioQuality != media.AudioQualityUnspecified && a.MediaKind != media.KindAudio {
			return fmt.Errorf("attribute %q: audio quality on %v attribute", a.Name, a.MediaKind)
		}
	case KindTComp:
		if len(a.Tracks) == 0 {
			return fmt.Errorf("attribute %q: tcomp without tracks", a.Name)
		}
		names := make(map[string]bool)
		for _, tr := range a.Tracks {
			if tr.Name == "" {
				return fmt.Errorf("attribute %q: unnamed track", a.Name)
			}
			if names[tr.Name] {
				return fmt.Errorf("attribute %q: duplicate track %q", a.Name, tr.Name)
			}
			names[tr.Name] = true
		}
	default:
		return fmt.Errorf("attribute %q: unknown kind %v", a.Name, a.Kind)
	}
	return nil
}

// Class returns the class with the given name.
func (s *Schema) Class(name string) (*Class, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.classes[name]
	return c, ok
}

// Classes returns all class names, sorted.
func (s *Schema) Classes() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.classes))
	for n := range s.classes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
