package schema

import (
	"strings"
	"testing"
	"time"

	"avdb/internal/media"
	"avdb/internal/temporal"
)

// defineNewscast builds the paper's class hierarchy: a MediaObject root,
// SimpleNewscast with a quality-constrained video attribute, and Newscast
// with the four-track clip tcomp.
func defineNewscast(t *testing.T) (*Schema, *Class, *Class) {
	t.Helper()
	s := NewSchema()
	if _, err := s.Define("MediaObject", "", []AttrDef{
		{Name: "title", Kind: KindString},
	}); err != nil {
		t.Fatal(err)
	}
	simple, err := s.Define("SimpleNewscast", "MediaObject", []AttrDef{
		{Name: "broadcastSource", Kind: KindString},
		{Name: "keywords", Kind: KindString},
		{Name: "whenBroadcast", Kind: KindDate},
		{Name: "videoTrack", Kind: KindMedia, MediaKind: media.KindVideo,
			VideoQuality: media.VideoQuality{Width: 4, Height: 4, Depth: 8, FPS: 30}},
	})
	if err != nil {
		t.Fatal(err)
	}
	newscast, err := s.Define("Newscast", "MediaObject", []AttrDef{
		{Name: "whenBroadcast", Kind: KindDate},
		{Name: "clip", Kind: KindTComp, Tracks: []TrackDef{
			{Name: "videoTrack", MediaKind: media.KindVideo},
			{Name: "englishTrack", MediaKind: media.KindAudio},
			{Name: "frenchTrack", MediaKind: media.KindAudio},
			{Name: "subtitleTrack", MediaKind: media.KindText},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, simple, newscast
}

func smallVideo(t *testing.T, frames int) *media.VideoValue {
	t.Helper()
	v := media.NewVideoValue(media.TypeRawVideo30, 4, 4, 8)
	for i := 0; i < frames; i++ {
		if err := v.AppendFrame(media.NewFrame(4, 4, 8)); err != nil {
			t.Fatal(err)
		}
	}
	return v
}

func TestSchemaDefineAndLookup(t *testing.T) {
	s, simple, newscast := defineNewscast(t)
	if c, ok := s.Class("SimpleNewscast"); !ok || c != simple {
		t.Error("class lookup failed")
	}
	if _, ok := s.Class("Nope"); ok {
		t.Error("missing class found")
	}
	names := s.Classes()
	if len(names) != 3 || names[0] != "MediaObject" {
		t.Errorf("Classes = %v", names)
	}
	if simple.Super().Name() != "MediaObject" {
		t.Error("super wrong")
	}
	if !simple.IsSubclassOf(simple.Super()) || simple.IsSubclassOf(newscast) {
		t.Error("IsSubclassOf wrong")
	}
	// Inherited attribute resolution.
	if _, ok := simple.Attr("title"); !ok {
		t.Error("inherited attribute not found")
	}
	attrs := simple.Attrs()
	if len(attrs) != 5 || attrs[0].Name != "title" {
		t.Errorf("Attrs = %v", attrs)
	}
	if own := simple.OwnAttrs(); len(own) != 4 {
		t.Errorf("OwnAttrs = %v", own)
	}
	if simple.String() != "SimpleNewscast" {
		t.Error("String wrong")
	}
}

func TestSchemaDefineErrors(t *testing.T) {
	s, _, _ := defineNewscast(t)
	cases := map[string]struct {
		name, super string
		attrs       []AttrDef
	}{
		"empty name":        {"", "", nil},
		"duplicate class":   {"Newscast", "", nil},
		"unknown super":     {"X", "Nope", nil},
		"shadowed attr":     {"X", "MediaObject", []AttrDef{{Name: "title", Kind: KindString}}},
		"dup attr":          {"X", "", []AttrDef{{Name: "a", Kind: KindInt}, {Name: "a", Kind: KindString}}},
		"unnamed attr":      {"X", "", []AttrDef{{Kind: KindInt}}},
		"tcomp no tracks":   {"X", "", []AttrDef{{Name: "c", Kind: KindTComp}}},
		"tcomp dup track":   {"X", "", []AttrDef{{Name: "c", Kind: KindTComp, Tracks: []TrackDef{{Name: "t", MediaKind: media.KindVideo}, {Name: "t", MediaKind: media.KindAudio}}}}},
		"tcomp empty track": {"X", "", []AttrDef{{Name: "c", Kind: KindTComp, Tracks: []TrackDef{{MediaKind: media.KindVideo}}}}},
		"scalar with track": {"X", "", []AttrDef{{Name: "a", Kind: KindInt, Tracks: []TrackDef{{Name: "t"}}}}},
		"quality on audio":  {"X", "", []AttrDef{{Name: "a", Kind: KindMedia, MediaKind: media.KindAudio, VideoQuality: media.VideoQuality{Width: 1, Height: 1, Depth: 8, FPS: 1}}}},
		"bad quality":       {"X", "", []AttrDef{{Name: "a", Kind: KindMedia, MediaKind: media.KindVideo, VideoQuality: media.VideoQuality{Width: -1, Height: 1, Depth: 8, FPS: 1}}}},
		"audioq on video":   {"X", "", []AttrDef{{Name: "a", Kind: KindMedia, MediaKind: media.KindVideo, AudioQuality: media.AudioQualityCD}}},
		"unknown kind":      {"X", "", []AttrDef{{Name: "a", Kind: AttrKind(99)}}},
	}
	for label, tc := range cases {
		if _, err := s.Define(tc.name, tc.super, tc.attrs); err == nil {
			t.Errorf("%s: Define succeeded", label)
		}
	}
}

func TestObjectSetGet(t *testing.T) {
	_, simple, _ := defineNewscast(t)
	store := NewStore()
	o := store.NewObject(simple)
	when := time.Date(1993, 4, 19, 20, 0, 0, 0, time.UTC)
	if err := o.Set("title", String("60 Minutes")); err != nil {
		t.Fatal(err)
	}
	if err := o.Set("whenBroadcast", Date(when)); err != nil {
		t.Fatal(err)
	}
	if err := o.Set("videoTrack", Media(smallVideo(t, 30))); err != nil {
		t.Fatal(err)
	}
	if d, ok := o.Get("title"); !ok || d.Str() != "60 Minutes" {
		t.Error("Get title failed")
	}
	if _, ok := o.Get("keywords"); ok {
		t.Error("unset attribute returned")
	}
	if got := o.Fields(); len(got) != 3 || got[0] != "title" {
		t.Errorf("Fields = %v", got)
	}
	if !strings.Contains(o.String(), "SimpleNewscast") {
		t.Error("String wrong")
	}
	// Errors.
	if err := o.Set("nope", Int(1)); err == nil {
		t.Error("set of unknown attribute accepted")
	}
	if err := o.Set("title", Int(1)); err == nil {
		t.Error("kind mismatch accepted")
	}
	audio := media.NewAudioValue(media.TypeCDAudio, 2)
	if err := o.Set("videoTrack", Media(audio)); err == nil {
		t.Error("audio value in video attribute accepted")
	}
	if err := o.Set("videoTrack", Media(nil)); err == nil {
		t.Error("nil media accepted")
	}
}

func TestObjectQualityEnforcement(t *testing.T) {
	s := NewSchema()
	c, err := s.Define("HQ", "", []AttrDef{
		{Name: "v", Kind: KindMedia, MediaKind: media.KindVideo,
			VideoQuality: media.VideoQuality{Width: 640, Height: 480, Depth: 8, FPS: 30}},
	})
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore()
	o := store.NewObject(c)
	if err := o.Set("v", Media(smallVideo(t, 1))); err == nil {
		t.Error("4x4 value accepted for 640x480 attribute")
	}
}

func TestObjectTCompEnforcement(t *testing.T) {
	_, _, newscast := defineNewscast(t)
	store := NewStore()
	o := store.NewObject(newscast)

	full := temporal.NewComposite("clip")
	if err := full.Add("videoTrack", smallVideo(t, 30)); err != nil {
		t.Fatal(err)
	}
	eng := media.NewAudioValue(media.TypeVoiceAudio, 1)
	if err := eng.AppendSamples(make([]int16, 8000)); err != nil {
		t.Fatal(err)
	}
	if err := full.Add("englishTrack", eng); err != nil {
		t.Fatal(err)
	}
	if err := full.Add("frenchTrack", eng.Clone()); err != nil {
		t.Fatal(err)
	}
	if err := full.Add("subtitleTrack", media.NewTextStreamValue(1000)); err != nil {
		t.Fatal(err)
	}
	if err := o.Set("clip", TComp(full)); err != nil {
		t.Fatal(err)
	}

	// Missing track.
	partial := temporal.NewComposite("clip")
	if err := partial.Add("videoTrack", smallVideo(t, 30)); err != nil {
		t.Fatal(err)
	}
	if err := o.Set("clip", TComp(partial)); err == nil {
		t.Error("tcomp with missing tracks accepted")
	}
	// Wrong track kind.
	wrong := temporal.NewComposite("clip")
	for _, name := range []string{"videoTrack", "englishTrack", "frenchTrack", "subtitleTrack"} {
		if err := wrong.Add(name, smallVideo(t, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := o.Set("clip", TComp(wrong)); err == nil {
		t.Error("tcomp with wrong track kinds accepted")
	}
	if err := o.Set("clip", TComp(nil)); err == nil {
		t.Error("nil tcomp accepted")
	}
}

func TestStoreLifecycle(t *testing.T) {
	_, simple, newscast := defineNewscast(t)
	store := NewStore()
	o1 := store.NewObject(simple)
	o2 := store.NewObject(newscast)
	if o1.OID() == o2.OID() {
		t.Error("OIDs not unique")
	}
	if got, ok := store.Get(o1.OID()); !ok || got != o1 {
		t.Error("Get failed")
	}
	if store.Count() != 2 {
		t.Error("Count wrong")
	}
	if err := store.Delete(o1.OID()); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Get(o1.OID()); ok {
		t.Error("deleted object found")
	}
	if err := store.Delete(o1.OID()); err == nil {
		t.Error("double delete accepted")
	}
	if store.Count() != 1 {
		t.Error("Count after delete wrong")
	}
}

func TestStoreClassExtent(t *testing.T) {
	s, simple, newscast := defineNewscast(t)
	root, _ := s.Class("MediaObject")
	store := NewStore()
	s1 := store.NewObject(simple)
	n1 := store.NewObject(newscast)
	n2 := store.NewObject(newscast)

	if got := store.OfClass(newscast, false); len(got) != 2 {
		t.Errorf("direct instances = %v", got)
	}
	if got := store.OfClass(root, false); len(got) != 0 {
		t.Errorf("root direct instances = %v", got)
	}
	ext := store.OfClass(root, true)
	if len(ext) != 3 || ext[0] != s1.OID() || ext[2] != n2.OID() {
		t.Errorf("root extent = %v", ext)
	}
	if got := store.OfClass(simple, true); len(got) != 1 || got[0] != n1.OID()-1 {
		t.Errorf("simple extent = %v", got)
	}
}

func TestDatumAccessorsAndEqual(t *testing.T) {
	when := time.Date(1993, 4, 19, 0, 0, 0, 0, time.UTC)
	video := smallVideo(t, 1)
	tc := temporal.NewComposite("x")
	cases := []struct {
		d    Datum
		kind AttrKind
	}{
		{String("a"), KindString},
		{Int(7), KindInt},
		{Float(1.5), KindFloat},
		{Bool(true), KindBool},
		{Date(when), KindDate},
		{Media(video), KindMedia},
		{TComp(tc), KindTComp},
	}
	for _, c := range cases {
		if c.d.Kind() != c.kind {
			t.Errorf("kind = %v, want %v", c.d.Kind(), c.kind)
		}
		if !c.d.Equal(c.d) {
			t.Errorf("%v not equal to itself", c.kind)
		}
		if c.d.Format() == "" {
			t.Errorf("%v Format empty", c.kind)
		}
	}
	if String("a").Equal(Int(0)) {
		t.Error("cross-kind equal")
	}
	if String("a").Str() != "a" || Int(7).IntVal() != 7 || Float(1.5).FloatVal() != 1.5 ||
		!Bool(true).BoolVal() || !Date(when).DateVal().Equal(when) ||
		Media(video).MediaVal() != media.Value(video) || TComp(tc).TCompVal() != tc {
		t.Error("accessors wrong")
	}
}

func TestDatumCompare(t *testing.T) {
	if c, err := String("a").Compare(String("b")); err != nil || c != -1 {
		t.Error("string compare wrong")
	}
	if c, err := Int(5).Compare(Int(5)); err != nil || c != 0 {
		t.Error("int compare wrong")
	}
	if c, err := Float(2).Compare(Float(1)); err != nil || c != 1 {
		t.Error("float compare wrong")
	}
	early := Date(time.Date(1990, 1, 1, 0, 0, 0, 0, time.UTC))
	late := Date(time.Date(1993, 1, 1, 0, 0, 0, 0, time.UTC))
	if c, err := early.Compare(late); err != nil || c != -1 {
		t.Error("date compare wrong")
	}
	if c, err := late.Compare(late); err != nil || c != 0 {
		t.Error("date self-compare wrong")
	}
	if c, err := late.Compare(early); err != nil || c != 1 {
		t.Error("date reverse compare wrong")
	}
	if _, err := Int(1).Compare(String("a")); err == nil {
		t.Error("cross-kind compare accepted")
	}
	if _, err := Bool(true).Compare(Bool(false)); err == nil {
		t.Error("bool compare accepted")
	}
	if !String("hello world").Contains("lo wo") {
		t.Error("Contains wrong")
	}
	if Int(1).Contains("1") {
		t.Error("Contains on non-string succeeded")
	}
}

func TestAttrKindString(t *testing.T) {
	if KindString.String() != "String" || KindTComp.String() != "TComp" {
		t.Error("names wrong")
	}
	if AttrKind(42).String() != "AttrKind(42)" {
		t.Error("out-of-range name wrong")
	}
	if OID(7).String() != "oid:7" {
		t.Error("OID format wrong")
	}
	if Media(nil).Format() != "<nil media>" || TComp(nil).Format() != "<nil tcomp>" {
		t.Error("nil formats wrong")
	}
}
