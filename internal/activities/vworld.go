package activities

import (
	"fmt"

	"avdb/internal/activity"
	"avdb/internal/media"
	"avdb/internal/render"
)

// MovePolicy drives a MoveSource: given the step number and the current
// camera, it returns the next camera pose.
type MovePolicy func(step int, cam render.Camera) render.Camera

// OrbitPolicy walks the camera forward while turning gently — a canned
// interactive walkthrough.
func OrbitPolicy(w *render.World, speed, turn float64) MovePolicy {
	return func(step int, cam render.Camera) render.Camera {
		return w.Move(cam, speed, turn)
	}
}

// MoveSource is the virtual-world "move" activity of Fig. 4: the user-
// driven control stream of camera poses.
type MoveSource struct {
	*activity.Base
	cam    render.Camera
	policy MovePolicy
	steps  int
	pos    int
}

// NewMoveSource returns a move source emitting steps poses from the
// initial camera under the policy.
func NewMoveSource(name string, loc activity.Location, start render.Camera, policy MovePolicy, steps int) (*MoveSource, error) {
	if policy == nil {
		return nil, fmt.Errorf("activities: MoveSource needs a policy")
	}
	if steps <= 0 {
		return nil, fmt.Errorf("activities: MoveSource needs a positive step count")
	}
	m := &MoveSource{Base: activity.NewBase(name, "MoveSource", loc), cam: start, policy: policy, steps: steps}
	m.AddPort("out", activity.Out, render.TypeCameraControl)
	m.DeclareEvents(activity.EventEachFrame, activity.EventLastFrame)
	return m, nil
}

// Tick implements activity.Activity.
func (m *MoveSource) Tick(tc *activity.TickContext) error {
	if m.pos >= m.steps {
		m.MarkDone()
		return nil
	}
	m.cam = m.policy(m.pos, m.cam)
	tc.Emit("out", &activity.Chunk{Seq: m.pos, At: tc.Now, Arrived: tc.Now, Payload: render.CameraElement{Cam: m.cam}})
	m.Emit(activity.EventInfo{Event: activity.EventEachFrame, At: tc.Now, Seq: m.pos})
	m.pos++
	if m.pos >= m.steps {
		m.Emit(activity.EventInfo{Event: activity.EventLastFrame, At: tc.Now, Seq: m.pos - 1})
		m.MarkDone()
	}
	return nil
}

// RenderActivity is Fig. 4's "render": it "processes two streams — one
// coming from the user driven activity, move, the other from a video
// source — and generates a stream of raster images".  The video input
// textures the world's video wall; each camera pose yields one rendered
// frame.
type RenderActivity struct {
	*activity.Base
	renderer *render.Renderer
	lastTex  *media.Frame
	lastCam  render.Camera
	haveCam  bool
}

// NewRenderActivity returns a renderer activity over the given world
// view.
func NewRenderActivity(name string, loc activity.Location, r *render.Renderer) *RenderActivity {
	ra := &RenderActivity{Base: activity.NewBase(name, "Render", loc), renderer: r}
	ra.AddPort("move", activity.In, render.TypeCameraControl)
	ra.AddPort("video", activity.In, media.TypeRawVideo30)
	ra.AddPort("out", activity.Out, media.TypeRawVideo30)
	return ra
}

// Tick implements activity.Activity.
func (ra *RenderActivity) Tick(tc *activity.TickContext) error {
	if v := tc.In("video"); v != nil {
		f, ok := v.Payload.(*media.Frame)
		if !ok {
			return fmt.Errorf("activities: %s video input is %T, want raw frame", ra.Name(), v.Payload)
		}
		ra.lastTex = f
	}
	mv := tc.In("move")
	if mv != nil {
		ce, ok := mv.Payload.(render.CameraElement)
		if !ok {
			return fmt.Errorf("activities: %s move input is %T, want camera", ra.Name(), mv.Payload)
		}
		ra.lastCam = ce.Cam
		ra.haveCam = true
	}
	if !ra.haveCam {
		return nil // nothing to render until the first pose arrives
	}
	frame := ra.renderer.Render(ra.lastCam, ra.lastTex)
	out := &activity.Chunk{Seq: tc.Seq, At: tc.Now, Arrived: tc.Now, Payload: frame}
	if mv != nil {
		out.Arrived = activity.MaxArrival(mv, tc.In("video"))
		out.Seq = mv.Seq
	}
	tc.Emit("out", out)
	return nil
}
