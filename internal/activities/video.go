// Package activities provides the concrete activity classes of the
// paper's Table 1 and their audio and text counterparts:
//
//	activity         kind         in            out
//	VideoDigitizer   source       (camera)      raw
//	VideoReader      source       (storage)     raw or compressed
//	VideoEncoder     transformer  raw           compressed
//	VideoDecoder     transformer  compressed    raw
//	VideoTee         transformer  raw           raw × n
//	VideoMixer       transformer  raw × n       raw
//	VideoWindow      sink         raw           (display)
//	VideoWriter      sink         raw           (storage)
//
// plus AudioReader, AudioSynthesizer, AudioSink, AudioWriter,
// SubtitleReader, SubtitleSink, the virtual-world MoveSource and
// RenderActivity, and the synchronized MultiSource/MultiSink composites
// of §4.3.
package activities

import (
	"fmt"

	"avdb/internal/activity"
	"avdb/internal/avtime"
	"avdb/internal/codec"
	"avdb/internal/fault"
	"avdb/internal/media"
	"avdb/internal/sched"
	"avdb/internal/storage"
)

// VideoReader is Table 1's "video reader": a source producing a stored
// video value, raw or compressed according to the port type it is
// constructed with.  When attached to a storage stream, every frame's
// delivery pays the device read time.
//
// The reader honors the bound value's timeline placement: a value
// Translated to start at world time t produces nothing until t has
// elapsed since the stream started — this is how "temporal composition
// determines when operations on AV values take place" (§4.2).
type VideoReader struct {
	*activity.Base
	pos     int
	started avtime.WorldTime
	haveT0  bool
	stream  *storage.Stream

	retry     fault.RetryPolicy
	haveRetry bool
	dropOnErr bool
	retries   int // extra attempts spent recovering transient faults
	lost      int // frames abandoned to faults
}

// NewVideoReader returns a reader whose out port carries the given video
// type.
func NewVideoReader(name string, loc activity.Location, typ *media.Type) (*VideoReader, error) {
	if typ.Kind != media.KindVideo {
		return nil, fmt.Errorf("activities: VideoReader needs a video type, got %s", typ.Name)
	}
	r := &VideoReader{Base: activity.NewBase(name, "VideoReader", loc)}
	r.AddPort("out", activity.Out, typ)
	r.DeclareEvents(activity.EventEachFrame, activity.EventLastFrame,
		activity.EventFault, activity.EventDegraded, activity.EventRestored)
	return r, nil
}

// AttachStream ties frame delivery to a bandwidth-reserved storage
// stream.
func (r *VideoReader) AttachStream(s *storage.Stream) { r.stream = s }

// SetRetry arms bounded retry for transient read faults.  Configure
// before starting: the policy is read on the graph-runner goroutine.
func (r *VideoReader) SetRetry(p fault.RetryPolicy) {
	r.retry, r.haveRetry = p, true
}

// SetDropOnFault makes the reader sacrifice a frame it cannot read —
// after retries are exhausted or on a non-retryable fault — instead of
// killing the run: the frame is skipped, counted, and surfaced as an
// EventFault.  Off by default: an unhandled read fault stops the
// stream.
func (r *VideoReader) SetDropOnFault(on bool) { r.dropOnErr = on }

// Retries reports extra read attempts spent on transient faults.
func (r *VideoReader) Retries() int { return r.retries }

// FramesLost reports frames abandoned to faults.
func (r *VideoReader) FramesLost() int { return r.lost }

// Degrade rebinds the reader mid-stream to a cheaper representation of
// its value — the delivery half of a quality renegotiation.  The
// playback position is remapped proportionally so presentation resumes
// at the equivalent moment of the new representation.  It must run on
// the graph-runner goroutine (e.g. inside an event handler), where no
// Tick is concurrently in flight.
func (r *VideoReader) Degrade(v media.Value, port string) error {
	old, ok := r.Binding(port)
	if !ok {
		return fmt.Errorf("activities: %s has no binding on %q to degrade", r.Name(), port)
	}
	if err := r.Bind(v, port); err != nil {
		return err
	}
	if oldN, newN := old.NumElements(), v.NumElements(); oldN > 0 && oldN != newN {
		r.pos = r.pos * newN / oldN
		if r.pos > newN {
			r.pos = newN
		}
	}
	if r.stream != nil {
		// The attached stream keeps serving the placed segment; a
		// smaller representation means scheduled reads can skip the
		// bytes the degraded quality ignores.
		r.stream.SetPayloadBytes(v.Size())
	}
	return nil
}

// readTime charges one frame's device read to the timeline, retrying
// transient faults under the configured policy.  Reads go through the
// chunk-indexed path so a store cache policy can serve prefetched frames
// without device time; with no policy it costs exactly a plain read.
// The read is tagged with the tick's service round and the frame's
// playback deadline (its presentation tick), so a round-scheduling store
// can batch it SCAN-EDF with the other streams of the same round — under
// the multi-session engine, that round spans every session ticked in the
// same engine step.
func (r *VideoReader) readTime(tc *activity.TickContext, idx int, bytes int64) (avtime.WorldTime, error) {
	read := func() (avtime.WorldTime, error) {
		return r.stream.ReadChunkTimeAt(idx, bytes, tc.Round, tc.Now, tc.Now)
	}
	if !r.haveRetry {
		return read()
	}
	dt, attempts, err := r.retry.Do(read)
	r.retries += attempts - 1
	return dt, err
}

// Tick implements activity.Activity.
func (r *VideoReader) Tick(tc *activity.TickContext) error {
	v, ok := r.Binding("out")
	if !ok {
		return fmt.Errorf("activities: %s has no bound value", r.Name())
	}
	if !r.haveT0 {
		r.started = tc.Now
		r.haveT0 = true
		if r.CuePoint() > 0 {
			r.pos = int(v.Type().Rate.UnitsIn(r.CuePoint()))
		}
	}
	// Honor the value's timeline placement: wait out its start offset.
	if tc.Now-r.started < v.Start() {
		return nil
	}
	if r.pos >= v.NumElements() {
		r.MarkDone()
		return nil
	}
	el, err := v.ElementAt(avtime.ObjectTime(r.pos))
	if err != nil {
		return err
	}
	c := &activity.Chunk{Seq: r.pos, At: tc.Now, Arrived: tc.Now, Payload: el}
	if r.stream != nil {
		dt, err := r.readTime(tc, r.pos, el.Size())
		if err != nil {
			if !r.dropOnErr {
				return err
			}
			// Sacrifice the frame, keep the stream alive.
			r.lost++
			r.Emit(activity.EventInfo{Event: activity.EventFault, At: tc.Now, Seq: r.pos})
			r.pos++
			if r.pos >= v.NumElements() {
				r.Emit(activity.EventInfo{Event: activity.EventLastFrame, At: tc.Now, Seq: r.pos - 1})
				r.MarkDone()
			}
			return nil
		}
		c.Arrived += dt
	}
	tc.Emit("out", c)
	r.Emit(activity.EventInfo{Event: activity.EventEachFrame, At: tc.Now, Seq: r.pos})
	r.pos++
	if r.pos >= v.NumElements() {
		r.Emit(activity.EventInfo{Event: activity.EventLastFrame, At: tc.Now, Seq: r.pos - 1})
		r.MarkDone()
	}
	return nil
}

// FrameGenerator produces live frames for a digitizer, e.g. from a
// synthetic camera.
type FrameGenerator func(i int) *media.Frame

// VideoDigitizer is Table 1's "video digitizer": a live source producing
// raw frames from a capture device.  Live sources have no natural end;
// maxFrames <= 0 runs until stopped.
type VideoDigitizer struct {
	*activity.Base
	gen       FrameGenerator
	maxFrames int
	pos       int
}

// NewVideoDigitizer returns a digitizer over the given frame generator.
func NewVideoDigitizer(name string, loc activity.Location, gen FrameGenerator, maxFrames int) (*VideoDigitizer, error) {
	if gen == nil {
		return nil, fmt.Errorf("activities: VideoDigitizer needs a frame generator")
	}
	d := &VideoDigitizer{Base: activity.NewBase(name, "VideoDigitizer", loc), gen: gen, maxFrames: maxFrames}
	d.AddPort("out", activity.Out, media.TypeRawVideo30)
	d.DeclareEvents(activity.EventEachFrame, activity.EventLastFrame)
	return d, nil
}

// Tick implements activity.Activity.
func (d *VideoDigitizer) Tick(tc *activity.TickContext) error {
	if d.maxFrames > 0 && d.pos >= d.maxFrames {
		d.MarkDone()
		return nil
	}
	f := d.gen(d.pos)
	tc.Emit("out", &activity.Chunk{Seq: d.pos, At: tc.Now, Arrived: tc.Now, Payload: f})
	d.Emit(activity.EventInfo{Event: activity.EventEachFrame, At: tc.Now, Seq: d.pos})
	d.pos++
	if d.maxFrames > 0 && d.pos >= d.maxFrames {
		d.Emit(activity.EventInfo{Event: activity.EventLastFrame, At: tc.Now, Seq: d.pos - 1})
		d.MarkDone()
	}
	return nil
}

// VideoEncoder is Table 1's "video encoder": raw frames in, compressed
// frames out, using a streaming intra- or inter-frame encoder.
type VideoEncoder struct {
	*activity.Base
	enc *codec.VideoStreamEncoder
}

// NewVideoEncoder returns an encoder emitting the given encoded type.
func NewVideoEncoder(name string, loc activity.Location, outType *media.Type, enc *codec.VideoStreamEncoder) (*VideoEncoder, error) {
	if !outType.Compressed || outType.Kind != media.KindVideo {
		return nil, fmt.Errorf("activities: VideoEncoder needs a compressed video type, got %s", outType.Name)
	}
	e := &VideoEncoder{Base: activity.NewBase(name, "VideoEncoder", loc), enc: enc}
	e.AddPort("in", activity.In, media.TypeRawVideo30)
	e.AddPort("out", activity.Out, outType)
	return e, nil
}

// Tick implements activity.Activity.
func (e *VideoEncoder) Tick(tc *activity.TickContext) error {
	in := tc.In("in")
	if in == nil {
		return nil
	}
	f, ok := in.Payload.(*media.Frame)
	if !ok {
		return fmt.Errorf("activities: %s received %T, want raw frame", e.Name(), in.Payload)
	}
	ef, err := e.enc.EncodeFrame(f)
	if err != nil {
		return err
	}
	out := *in
	out.Payload = ef
	tc.Emit("out", &out)
	return nil
}

// VideoDecoder is Table 1's "video decoder": compressed frames in, raw
// frames out.
type VideoDecoder struct {
	*activity.Base
	dec *codec.VideoStreamDecoder
}

// NewVideoDecoder returns a decoder for streams of the given encoded
// type.
func NewVideoDecoder(name string, loc activity.Location, inType *media.Type, dec *codec.VideoStreamDecoder) (*VideoDecoder, error) {
	if !inType.Compressed || inType.Kind != media.KindVideo {
		return nil, fmt.Errorf("activities: VideoDecoder needs a compressed video type, got %s", inType.Name)
	}
	d := &VideoDecoder{Base: activity.NewBase(name, "VideoDecoder", loc), dec: dec}
	d.AddPort("in", activity.In, inType)
	d.AddPort("out", activity.Out, media.TypeRawVideo30)
	return d, nil
}

// Tick implements activity.Activity.
func (d *VideoDecoder) Tick(tc *activity.TickContext) error {
	in := tc.In("in")
	if in == nil {
		return nil
	}
	ef, ok := in.Payload.(*codec.EncodedFrame)
	if !ok {
		return fmt.Errorf("activities: %s received %T, want encoded frame", d.Name(), in.Payload)
	}
	f, err := d.dec.DecodeFrame(ef)
	if err != nil {
		return err
	}
	out := *in
	out.Payload = f
	tc.Emit("out", &out)
	return nil
}

// VideoTee is Table 1's "video tee": one raw stream in, n copies out on
// ports "out0".."out{n-1}".
type VideoTee struct {
	*activity.Base
	n int
}

// NewVideoTee returns a tee with n outputs.
func NewVideoTee(name string, loc activity.Location, n int) (*VideoTee, error) {
	if n < 2 {
		return nil, fmt.Errorf("activities: a tee needs at least 2 outputs, got %d", n)
	}
	t := &VideoTee{Base: activity.NewBase(name, "VideoTee", loc), n: n}
	t.AddPort("in", activity.In, media.TypeRawVideo30)
	for i := 0; i < n; i++ {
		t.AddPort(fmt.Sprintf("out%d", i), activity.Out, media.TypeRawVideo30)
	}
	return t, nil
}

// Tick implements activity.Activity.
func (t *VideoTee) Tick(tc *activity.TickContext) error {
	in := tc.In("in")
	if in == nil {
		return nil
	}
	for i := 0; i < t.n; i++ {
		out := *in
		tc.Emit(fmt.Sprintf("out%d", i), &out)
	}
	return nil
}

// VideoMixer is Table 1's "video mixer": n raw streams in, one blended
// raw stream out — the operation behind "video mixing is commonly used
// during video editing".  Inputs are averaged with the configured
// weights; absent inputs are skipped that tick.
type VideoMixer struct {
	*activity.Base
	weights []float64
}

// NewVideoMixer returns a mixer with one in port per weight
// ("in0".."in{n-1}").  Weights are normalized over the inputs present
// each tick.
func NewVideoMixer(name string, loc activity.Location, weights []float64) (*VideoMixer, error) {
	if len(weights) < 2 {
		return nil, fmt.Errorf("activities: a mixer needs at least 2 inputs, got %d", len(weights))
	}
	for _, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("activities: mixer weights must be positive, got %v", w)
		}
	}
	m := &VideoMixer{Base: activity.NewBase(name, "VideoMixer", loc), weights: append([]float64(nil), weights...)}
	for i := range weights {
		m.AddPort(fmt.Sprintf("in%d", i), activity.In, media.TypeRawVideo30)
	}
	m.AddPort("out", activity.Out, media.TypeRawVideo30)
	return m, nil
}

// Tick implements activity.Activity.
func (m *VideoMixer) Tick(tc *activity.TickContext) error {
	var frames []*media.Frame
	var weights []float64
	var chunks []*activity.Chunk
	var seq int
	for i := range m.weights {
		in := tc.In(fmt.Sprintf("in%d", i))
		if in == nil {
			continue
		}
		f, ok := in.Payload.(*media.Frame)
		if !ok {
			return fmt.Errorf("activities: %s received %T, want raw frame", m.Name(), in.Payload)
		}
		frames = append(frames, f)
		weights = append(weights, m.weights[i])
		chunks = append(chunks, in)
		seq = in.Seq
	}
	if len(frames) == 0 {
		return nil
	}
	first := frames[0]
	for _, f := range frames[1:] {
		if f.Width != first.Width || f.Height != first.Height || f.Depth != first.Depth {
			return fmt.Errorf("activities: %s mixing mismatched geometries %dx%d and %dx%d",
				m.Name(), first.Width, first.Height, f.Width, f.Height)
		}
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	out := media.NewFrame(first.Width, first.Height, first.Depth)
	for p := range out.Pix {
		var acc float64
		for i, f := range frames {
			acc += weights[i] / total * float64(f.Pix[p])
		}
		out.Pix[p] = byte(acc + 0.5)
	}
	tc.Emit("out", &activity.Chunk{
		Seq: seq, At: tc.Now,
		Arrived: activity.MaxArrival(chunks...),
		Payload: out,
	})
	return nil
}

// VideoWindow is Table 1's "video window": the display sink.  Instead of
// painting pixels it validates geometry against its quality factor and
// keeps presentation statistics; optionally it retains the frames for
// inspection.
type VideoWindow struct {
	*activity.Base
	quality    media.VideoQuality
	keepFrames bool

	frames    int
	bytes     int64
	corrupted int
	kept      []*media.Frame
	arrivals  []avtime.WorldTime
	monitor   *sched.Monitor
	stall     *sched.StallDetector
}

// NewVideoWindow returns a window expecting the given quality; a zero
// quality accepts any geometry.  Tolerance bounds acceptable lateness.
func NewVideoWindow(name string, loc activity.Location, q media.VideoQuality, tolerance avtime.WorldTime) *VideoWindow {
	w := &VideoWindow{
		Base:    activity.NewBase(name, "VideoWindow", loc),
		quality: q, monitor: sched.NewMonitor(tolerance),
	}
	w.AddPort("in", activity.In, media.TypeRawVideo30)
	w.DeclareEvents(activity.EventFault, activity.EventStalled,
		activity.EventRecovered, activity.EventDegraded, activity.EventRestored)
	return w
}

// KeepFrames retains delivered frames for test inspection.
func (w *VideoWindow) KeepFrames() { w.keepFrames = true }

// EnableStallDetection arms a detector that declares a stall after
// threshold consecutive frames each later than the window's tolerance,
// emitting EventStalled on the edge and EventRecovered when deadlines
// are met again.  Configure before starting.
func (w *VideoWindow) EnableStallDetection(tolerance avtime.WorldTime, threshold int) *sched.StallDetector {
	d := sched.NewStallDetector(tolerance, threshold)
	d.OnStall(func(at avtime.WorldTime) {
		w.Emit(activity.EventInfo{Event: activity.EventStalled, Activity: w.Name(), At: at})
	})
	d.OnRecover(func(at avtime.WorldTime) {
		w.Emit(activity.EventInfo{Event: activity.EventRecovered, Activity: w.Name(), At: at})
	})
	w.stall = d
	return d
}

// Tick implements activity.Activity.
func (w *VideoWindow) Tick(tc *activity.TickContext) error {
	in := tc.In("in")
	if in == nil {
		return nil
	}
	f, ok := in.Payload.(*media.Frame)
	if !ok {
		return fmt.Errorf("activities: %s received %T, want raw frame", w.Name(), in.Payload)
	}
	if !w.quality.IsZero() && (f.Width != w.quality.Width || f.Height != w.quality.Height || f.Depth != w.quality.Depth) {
		return fmt.Errorf("activities: %s expected %v, got %dx%dx%d frame",
			w.Name(), w.quality, f.Width, f.Height, f.Depth)
	}
	w.frames++
	w.bytes += f.Size()
	if in.Corrupted {
		w.corrupted++
		w.Emit(activity.EventInfo{Event: activity.EventFault, Activity: w.Name(), At: in.Arrived, Seq: in.Seq})
	}
	w.monitor.Record(in.At, in.Arrived)
	if w.stall != nil {
		w.stall.Record(in.At, in.Arrived)
	}
	w.arrivals = append(w.arrivals, in.Arrived)
	if w.keepFrames {
		w.kept = append(w.kept, f)
	}
	return nil
}

// CorruptedFrames reports frames that arrived with damaged payloads.
func (w *VideoWindow) CorruptedFrames() int { return w.corrupted }

// FramesShown reports the number of frames presented.
func (w *VideoWindow) FramesShown() int { return w.frames }

// BytesShown reports the total pixel bytes presented.
func (w *VideoWindow) BytesShown() int64 { return w.bytes }

// Frames returns the retained frames (empty unless KeepFrames was set).
func (w *VideoWindow) Frames() []*media.Frame { return w.kept }

// Arrivals returns the per-frame actual presentation times.
func (w *VideoWindow) Arrivals() []avtime.WorldTime { return w.arrivals }

// Monitor returns the window's deadline statistics.
func (w *VideoWindow) Monitor() *sched.Monitor { return w.monitor }

// VideoWriter is Table 1's "video writer": a sink appending received
// frames to the video value bound to its in port — recording.  Encoded
// input is supported by constructing with a compressed type; the frames
// are then collected as encoded payloads via Collected.
type VideoWriter struct {
	*activity.Base
	typ       *media.Type
	collected []media.Element
	stream    *storage.Stream
}

// NewVideoWriter returns a writer accepting the given video type.
func NewVideoWriter(name string, loc activity.Location, typ *media.Type) (*VideoWriter, error) {
	if typ.Kind != media.KindVideo {
		return nil, fmt.Errorf("activities: VideoWriter needs a video type, got %s", typ.Name)
	}
	w := &VideoWriter{Base: activity.NewBase(name, "VideoWriter", loc), typ: typ}
	w.AddPort("in", activity.In, typ)
	return w, nil
}

// AttachStream ties writes to a bandwidth-reserved storage stream.
func (w *VideoWriter) AttachStream(s *storage.Stream) { w.stream = s }

// Tick implements activity.Activity.
func (w *VideoWriter) Tick(tc *activity.TickContext) error {
	in := tc.In("in")
	if in == nil {
		return nil
	}
	if w.stream != nil {
		if _, err := w.stream.ReadTime(in.Size()); err != nil {
			return err
		}
	}
	// Raw frames destined for a bound VideoValue are appended in place.
	if dst, ok := w.Binding("in"); ok {
		vv, isRaw := dst.(*media.VideoValue)
		f, isFrame := in.Payload.(*media.Frame)
		if isRaw && isFrame {
			return vv.AppendFrame(f)
		}
	}
	w.collected = append(w.collected, in.Payload)
	return nil
}

// Collected returns elements received without a bound destination.
func (w *VideoWriter) Collected() []media.Element { return w.collected }
