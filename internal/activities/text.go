package activities

import (
	"fmt"

	"avdb/internal/activity"
	"avdb/internal/avtime"
	"avdb/internal/media"
)

// SubtitleReader is a source producing the cues of a text stream value:
// it emits a chunk whenever the displayed cue changes (including the
// change to silence).
type SubtitleReader struct {
	*activity.Base
	started  avtime.WorldTime
	haveT0   bool
	last     string
	lastSeen bool
	done     bool
	seq      int
}

// NewSubtitleReader returns a subtitle source.
func NewSubtitleReader(name string, loc activity.Location) *SubtitleReader {
	r := &SubtitleReader{Base: activity.NewBase(name, "SubtitleReader", loc)}
	r.AddPort("out", activity.Out, media.TypeTextStream)
	r.DeclareEvents(activity.EventEachFrame, activity.EventLastFrame)
	return r
}

// Tick implements activity.Activity.
func (r *SubtitleReader) Tick(tc *activity.TickContext) error {
	v, ok := r.Binding("out")
	if !ok {
		return fmt.Errorf("activities: %s has no bound value", r.Name())
	}
	ts, ok := v.(*media.TextStreamValue)
	if !ok {
		return fmt.Errorf("activities: %s bound to %T, want TextStreamValue", r.Name(), v)
	}
	if !r.haveT0 {
		r.started = tc.Now
		r.haveT0 = true
	}
	// Honor the value's timeline placement.
	elapsed := tc.Now - r.started + r.CuePoint() - ts.Start()
	if elapsed < 0 {
		return nil
	}
	tick := v.Type().Rate.UnitsIn(elapsed)
	if int(tick) >= ts.NumElements() {
		if !r.done {
			r.Emit(activity.EventInfo{Event: activity.EventLastFrame, At: tc.Now, Seq: r.seq})
			r.done = true
		}
		r.MarkDone()
		return nil
	}
	cue, _ := ts.CueAt(tick)
	if r.lastSeen && cue.Text == r.last {
		return nil
	}
	r.last = cue.Text
	r.lastSeen = true
	tc.Emit("out", &activity.Chunk{Seq: r.seq, At: tc.Now, Arrived: tc.Now, Payload: cue})
	r.Emit(activity.EventInfo{Event: activity.EventEachFrame, At: tc.Now, Seq: r.seq})
	r.seq++
	return nil
}

// SubtitleSink collects displayed cue changes.
type SubtitleSink struct {
	*activity.Base
	cues []media.Cue
}

// NewSubtitleSink returns a subtitle sink.
func NewSubtitleSink(name string, loc activity.Location) *SubtitleSink {
	s := &SubtitleSink{Base: activity.NewBase(name, "SubtitleSink", loc)}
	s.AddPort("in", activity.In, media.TypeTextStream)
	return s
}

// Tick implements activity.Activity.
func (s *SubtitleSink) Tick(tc *activity.TickContext) error {
	in := tc.In("in")
	if in == nil {
		return nil
	}
	cue, ok := in.Payload.(media.Cue)
	if !ok {
		return fmt.Errorf("activities: %s received %T, want cue", s.Name(), in.Payload)
	}
	s.cues = append(s.cues, cue)
	return nil
}

// Cues returns the cue changes seen, in order.
func (s *SubtitleSink) Cues() []media.Cue { return s.cues }
