package activities

import (
	"fmt"

	"avdb/internal/activity"
)

// NewMultiSource returns the empty composite of §4.3's
//
//	dbSource = new activity MultiSource
//
// Components are added with Install; Seal then exports the multiplexing
// "out" port over every component's "out" port.
func NewMultiSource(name string, loc activity.Location) *activity.Composite {
	return activity.NewComposite(name, "MultiSource", loc)
}

// SealMultiSource exports the composite's single multiplexed out port
// over all installed components.  Call after the last Install.
func SealMultiSource(c *activity.Composite) error {
	children := c.Children()
	if len(children) == 0 {
		return fmt.Errorf("activities: MultiSource %s has no components", c.Name())
	}
	refs := make([]activity.TrackRef, 0, len(children))
	for _, ch := range children {
		if _, ok := ch.Port("out"); !ok {
			return fmt.Errorf("activities: component %s has no out port", ch.Name())
		}
		refs = append(refs, activity.TrackRef{Child: ch, Port: "out"})
	}
	return c.ExportMuxOut("out", refs...)
}

// NewMultiSink returns the matching sink composite ("appSink = new
// activity MultiSink").  Synchronization of the component streams is
// enabled by default — maintaining temporal correlation is the point of
// the composite (§4.2).
func NewMultiSink(name string, loc activity.Location) *activity.Composite {
	c := activity.NewComposite(name, "MultiSink", loc)
	c.EnableSync(0.3)
	return c
}

// SealMultiSink exports the composite's single multiplexed in port over
// all installed components.  Component names must match the track names
// the paired MultiSource produces.
func SealMultiSink(c *activity.Composite) error {
	children := c.Children()
	if len(children) == 0 {
		return fmt.Errorf("activities: MultiSink %s has no components", c.Name())
	}
	refs := make([]activity.TrackRef, 0, len(children))
	for _, ch := range children {
		if _, ok := ch.Port("in"); !ok {
			return fmt.Errorf("activities: component %s has no in port", ch.Name())
		}
		refs = append(refs, activity.TrackRef{Child: ch, Port: "in"})
	}
	return c.ExportMuxIn("in", refs...)
}
