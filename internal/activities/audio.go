package activities

import (
	"fmt"

	"avdb/internal/activity"
	"avdb/internal/avtime"
	"avdb/internal/media"
	"avdb/internal/sched"
	"avdb/internal/storage"
	"avdb/internal/synth"
)

// AudioReader is a source producing a stored audio value as sample-
// accurate blocks: at every tick it emits exactly the samples whose
// presentation falls inside the tick's interval, so audio stays exact at
// any graph tick rate.
type AudioReader struct {
	*activity.Base
	consumed int
	started  avtime.WorldTime
	haveT0   bool
	stream   *storage.Stream
}

// NewAudioReader returns a reader whose out port carries the given audio
// type.
func NewAudioReader(name string, loc activity.Location, typ *media.Type) (*AudioReader, error) {
	if typ.Kind != media.KindAudio {
		return nil, fmt.Errorf("activities: AudioReader needs an audio type, got %s", typ.Name)
	}
	r := &AudioReader{Base: activity.NewBase(name, "AudioReader", loc)}
	r.AddPort("out", activity.Out, typ)
	r.DeclareEvents(activity.EventEachFrame, activity.EventLastFrame)
	return r, nil
}

// AttachStream ties block delivery to a bandwidth-reserved storage
// stream.
func (r *AudioReader) AttachStream(s *storage.Stream) { r.stream = s }

// Tick implements activity.Activity.
func (r *AudioReader) Tick(tc *activity.TickContext) error {
	v, ok := r.Binding("out")
	if !ok {
		return fmt.Errorf("activities: %s has no bound value", r.Name())
	}
	av, ok := v.(*media.AudioValue)
	if !ok {
		return fmt.Errorf("activities: %s bound to %T, want AudioValue", r.Name(), v)
	}
	if !r.haveT0 {
		r.started = tc.Now
		r.haveT0 = true
		if r.CuePoint() > 0 {
			r.consumed = int(v.Type().Rate.UnitsIn(r.CuePoint()))
		}
	}
	total := av.NumSamples()
	if r.consumed >= total {
		r.MarkDone()
		return nil
	}
	// Honor the value's timeline placement: samples become due only after
	// the value's start offset has elapsed.
	elapsed := tc.Interval.End() - r.started - av.Start()
	if elapsed <= 0 {
		return nil
	}
	cueSamples := int(v.Type().Rate.UnitsIn(r.CuePoint()))
	target := cueSamples + int(v.Type().Rate.UnitsIn(elapsed))
	if target > total {
		target = total
	}
	if target <= r.consumed {
		return nil
	}
	block, err := av.Block(r.consumed, target)
	if err != nil {
		return err
	}
	c := &activity.Chunk{Seq: r.consumed, At: tc.Now, Arrived: tc.Now, Payload: block}
	if r.stream != nil {
		dt, err := r.stream.ReadTime(block.Size())
		if err != nil {
			return err
		}
		c.Arrived += dt
	}
	tc.Emit("out", c)
	r.Emit(activity.EventInfo{Event: activity.EventEachFrame, At: tc.Now, Seq: r.consumed})
	r.consumed = target
	if r.consumed >= total {
		r.Emit(activity.EventInfo{Event: activity.EventLastFrame, At: tc.Now, Seq: r.consumed - 1})
		r.MarkDone()
	}
	return nil
}

// AudioSynthesizer is a source that renders a MIDI sequence to PCM on
// first start and then streams it — the paper's "synthesizing digital
// audio from MIDI data" happening inside the database.
type AudioSynthesizer struct {
	*AudioReader
	seq     *synth.MIDISequence
	quality media.AudioQuality
	made    bool
}

// NewAudioSynthesizer returns a synthesizer source for the sequence at
// the given quality.
func NewAudioSynthesizer(name string, loc activity.Location, seq *synth.MIDISequence, q media.AudioQuality) (*AudioSynthesizer, error) {
	if seq == nil {
		return nil, fmt.Errorf("activities: AudioSynthesizer needs a sequence")
	}
	if q.Type() == nil {
		return nil, fmt.Errorf("activities: AudioSynthesizer needs a concrete quality, got %v", q)
	}
	inner, err := NewAudioReader(name, loc, q.Type())
	if err != nil {
		return nil, err
	}
	return &AudioSynthesizer{AudioReader: inner, seq: seq, quality: q}, nil
}

// Class reports "AudioSynthesizer".
func (s *AudioSynthesizer) Class() string { return "AudioSynthesizer" }

// Tick implements activity.Activity, synthesizing lazily on first tick.
func (s *AudioSynthesizer) Tick(tc *activity.TickContext) error {
	if !s.made {
		a, err := synth.Synthesize(s.seq, s.quality)
		if err != nil {
			return err
		}
		if err := s.Bind(a, "out"); err != nil {
			return err
		}
		s.made = true
	}
	return s.AudioReader.Tick(tc)
}

// AudioSink consumes audio blocks at a DAC: it validates stream
// continuity (no gaps or overlaps in sample positions) and keeps deadline
// statistics.
type AudioSink struct {
	*activity.Base
	quality media.AudioQuality

	next     avtime.ObjectTime
	haveNext bool
	samples  int64
	arrivals []avtime.WorldTime
	monitor  *sched.Monitor
}

// NewAudioSink returns a sink accepting the given audio type at the given
// quality factor.
func NewAudioSink(name string, loc activity.Location, typ *media.Type, q media.AudioQuality, tolerance avtime.WorldTime) (*AudioSink, error) {
	if typ.Kind != media.KindAudio {
		return nil, fmt.Errorf("activities: AudioSink needs an audio type, got %s", typ.Name)
	}
	s := &AudioSink{Base: activity.NewBase(name, "AudioSink", loc), quality: q, monitor: sched.NewMonitor(tolerance)}
	s.AddPort("in", activity.In, typ)
	return s, nil
}

// Tick implements activity.Activity.
func (s *AudioSink) Tick(tc *activity.TickContext) error {
	in := tc.In("in")
	if in == nil {
		return nil
	}
	b, ok := in.Payload.(*media.AudioBlock)
	if !ok {
		return fmt.Errorf("activities: %s received %T, want audio block", s.Name(), in.Payload)
	}
	if s.haveNext && b.Start != s.next {
		return fmt.Errorf("activities: %s: discontinuity: got sample %d, want %d", s.Name(), b.Start, s.next)
	}
	s.next = b.Start + avtime.ObjectTime(b.NumFrames())
	s.haveNext = true
	s.samples += int64(b.NumFrames())
	s.monitor.Record(in.At, in.Arrived)
	s.arrivals = append(s.arrivals, in.Arrived)
	return nil
}

// SamplesPlayed reports the number of sample frames consumed.
func (s *AudioSink) SamplesPlayed() int64 { return s.samples }

// Arrivals returns per-block actual delivery times.
func (s *AudioSink) Arrivals() []avtime.WorldTime { return s.arrivals }

// Monitor returns the sink's deadline statistics.
func (s *AudioSink) Monitor() *sched.Monitor { return s.monitor }

// AudioWriter appends received blocks to the audio value bound to its in
// port — audio recording.
type AudioWriter struct {
	*activity.Base
}

// NewAudioWriter returns a writer accepting the given audio type.
func NewAudioWriter(name string, loc activity.Location, typ *media.Type) (*AudioWriter, error) {
	if typ.Kind != media.KindAudio {
		return nil, fmt.Errorf("activities: AudioWriter needs an audio type, got %s", typ.Name)
	}
	w := &AudioWriter{Base: activity.NewBase(name, "AudioWriter", loc)}
	w.AddPort("in", activity.In, typ)
	return w, nil
}

// Tick implements activity.Activity.
func (w *AudioWriter) Tick(tc *activity.TickContext) error {
	in := tc.In("in")
	if in == nil {
		return nil
	}
	b, ok := in.Payload.(*media.AudioBlock)
	if !ok {
		return fmt.Errorf("activities: %s received %T, want audio block", w.Name(), in.Payload)
	}
	dst, ok := w.Binding("in")
	if !ok {
		return fmt.Errorf("activities: %s has no bound destination", w.Name())
	}
	av, ok := dst.(*media.AudioValue)
	if !ok {
		return fmt.Errorf("activities: %s bound to %T, want AudioValue", w.Name(), dst)
	}
	return av.AppendSamples(b.Samples)
}
