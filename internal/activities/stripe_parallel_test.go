package activities

import (
	"bytes"
	"reflect"
	"testing"

	"avdb/internal/activity"
	"avdb/internal/avtime"
	"avdb/internal/device"
	"avdb/internal/media"
	"avdb/internal/obs"
	"avdb/internal/sched"
	"avdb/internal/storage"
)

// runStripedWide plays 8 striped streams through VideoReaders under the
// given worker count and returns everything the determinism comparison
// needs: run stats, per-window arrival times, the scheduler counters,
// and the full obs snapshot.
func runStripedWide(t *testing.T, workers int) (*activity.RunStats, [][]avtime.WorldTime, storage.IOStats, []byte) {
	t.Helper()
	const (
		lanes  = 8
		frames = 30
		width  = 4
	)
	dm := device.NewManager()
	for _, id := range []string{"d0", "d1", "d2", "d3"} {
		d := device.NewDisk(id, 10_000_000, media.DataRate(lanes)*media.MBPerSecond, 10*avtime.Millisecond)
		if err := d.SetGeometry(16, avtime.Millisecond); err != nil {
			t.Fatal(err)
		}
		if err := dm.Register(d); err != nil {
			t.Fatal(err)
		}
	}
	st := storage.NewStore(dm)
	col := obs.NewCollector()
	st.SetSink(col)
	st.SetStriping(storage.StripePolicy{Seeks: true, Rounds: true})

	g := activity.NewGraph("striped")
	wins := make([]*VideoWindow, lanes)
	for i := 0; i < lanes; i++ {
		clip := motionClip(frames)
		seg, err := st.PlaceStriped(clip, media.MBPerSecond, width)
		if err != nil {
			t.Fatal(err)
		}
		stream, _, err := st.OpenStream(seg.ID(), media.MBPerSecond)
		if err != nil {
			t.Fatal(err)
		}
		defer stream.Close()
		reader, err := NewVideoReader("r"+string(rune('0'+i)), db, media.TypeRawVideo30)
		if err != nil {
			t.Fatal(err)
		}
		if err := reader.Bind(clip, "out"); err != nil {
			t.Fatal(err)
		}
		reader.AttachStream(stream)
		wins[i] = NewVideoWindow("w"+string(rune('0'+i)), app, media.VideoQuality{}, avtime.Second)
		addAll(t, g, reader, wins[i])
		connect(t, g, reader, "out", wins[i], "in")
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	stats, err := g.Run(activity.RunConfig{Clock: sched.NewVirtualClock(0), Workers: workers, Obs: col})
	if err != nil {
		t.Fatal(err)
	}
	arrivals := make([][]avtime.WorldTime, lanes)
	for i, w := range wins {
		if w.FramesShown() != frames {
			t.Fatalf("workers=%d: window %d showed %d/%d frames", workers, i, w.FramesShown(), frames)
		}
		arrivals[i] = w.Arrivals()
	}
	snap, err := col.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	return stats, arrivals, st.IOStats(), []byte(snap)
}

func TestStripedSerialParallelEquivalence(t *testing.T) {
	// The round scheduler sits on the hot path of every worker lane;
	// batching per tick must not let the lane count leak into results.
	// Serial and parallel runs must agree on stats, every stream's
	// arrival times, the scheduler counters, and the byte-exact obs
	// snapshot.
	serialStats, serialArr, serialIO, serialSnap := runStripedWide(t, 1)
	if serialIO.Scheduled == 0 || serialIO.SeeksSaved == 0 {
		t.Fatalf("scheduler idle in the striped run: %+v", serialIO)
	}
	for _, workers := range []int{2, 4} {
		parStats, parArr, parIO, parSnap := runStripedWide(t, workers)
		if !reflect.DeepEqual(serialStats, parStats) {
			t.Errorf("workers=%d: RunStats diverged:\nserial   %+v\nparallel %+v", workers, serialStats, parStats)
		}
		if !reflect.DeepEqual(serialArr, parArr) {
			t.Errorf("workers=%d: frame arrival times diverged", workers)
		}
		if serialIO != parIO {
			t.Errorf("workers=%d: IO scheduler stats diverged:\nserial   %+v\nparallel %+v", workers, serialIO, parIO)
		}
		if !bytes.Equal(serialSnap, parSnap) {
			t.Errorf("workers=%d: obs snapshots differ (%d vs %d bytes)", workers, len(serialSnap), len(parSnap))
		}
	}
}
