package activities

import (
	"strings"
	"testing"

	"avdb/internal/activity"
	"avdb/internal/avtime"
	"avdb/internal/codec"
	"avdb/internal/device"
	"avdb/internal/media"
	"avdb/internal/render"
	"avdb/internal/sched"
	"avdb/internal/storage"
	"avdb/internal/synth"
)

const (
	db  = activity.AtDatabase
	app = activity.AtApplication
)

func motionClip(frames int) *media.VideoValue {
	return synth.Video(media.TypeRawVideo30, synth.PatternMotion, 32, 24, 8, frames, 1)
}

func runGraph(t *testing.T, g *activity.Graph) *activity.RunStats {
	t.Helper()
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	stats, err := g.Run(activity.RunConfig{Clock: sched.NewVirtualClock(0)})
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

func addAll(t *testing.T, g *activity.Graph, as ...activity.Activity) {
	t.Helper()
	for _, a := range as {
		if err := g.Add(a); err != nil {
			t.Fatal(err)
		}
	}
}

func connect(t *testing.T, g *activity.Graph, from activity.Activity, op string, to activity.Activity, ip string) {
	t.Helper()
	if _, err := g.Connect(from, op, to, ip); err != nil {
		t.Fatal(err)
	}
}

func TestTable1Taxonomy(t *testing.T) {
	// Every Table 1 class reports the port directions and kind the table
	// gives it.
	reader, err := NewVideoReader("r", db, media.TypeRawVideo30)
	if err != nil {
		t.Fatal(err)
	}
	dig, err := NewVideoDigitizer("d", db, func(int) *media.Frame { return media.NewFrame(2, 2, 8) }, 1)
	if err != nil {
		t.Fatal(err)
	}
	se, _ := codec.NewIntraStreamEncoder(2)
	enc, err := NewVideoEncoder("e", db, codec.TypeJPEGVideo, se)
	if err != nil {
		t.Fatal(err)
	}
	sd, _ := codec.NewVideoStreamDecoder(32, 24, 8, 2)
	dec, err := NewVideoDecoder("x", db, codec.TypeJPEGVideo, sd)
	if err != nil {
		t.Fatal(err)
	}
	tee, err := NewVideoTee("t", db, 3)
	if err != nil {
		t.Fatal(err)
	}
	mix, err := NewVideoMixer("m", db, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	win := NewVideoWindow("w", app, media.VideoQuality{}, 0)
	wr, err := NewVideoWriter("vw", db, media.TypeRawVideo30)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		act  activity.Activity
		kind activity.ActivityKind
	}{
		{reader, activity.KindSource},
		{dig, activity.KindSource},
		{enc, activity.KindTransformer},
		{dec, activity.KindTransformer},
		{tee, activity.KindTransformer},
		{mix, activity.KindTransformer},
		{win, activity.KindSink},
		{wr, activity.KindSink},
	}
	for _, c := range cases {
		if c.act.Kind() != c.kind {
			t.Errorf("%s: kind = %v, want %v", c.act.Class(), c.act.Kind(), c.kind)
		}
	}
	if len(tee.Ports()) != 4 {
		t.Error("tee port count wrong")
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewVideoReader("r", db, media.TypeCDAudio); err == nil {
		t.Error("audio type accepted by VideoReader")
	}
	if _, err := NewVideoDigitizer("d", db, nil, 0); err == nil {
		t.Error("nil generator accepted")
	}
	se, _ := codec.NewIntraStreamEncoder(2)
	if _, err := NewVideoEncoder("e", db, media.TypeRawVideo30, se); err == nil {
		t.Error("raw type accepted by encoder")
	}
	sd, _ := codec.NewVideoStreamDecoder(2, 2, 8, 2)
	if _, err := NewVideoDecoder("d", db, media.TypeRawVideo30, sd); err == nil {
		t.Error("raw type accepted by decoder")
	}
	if _, err := NewVideoTee("t", db, 1); err == nil {
		t.Error("1-way tee accepted")
	}
	if _, err := NewVideoMixer("m", db, []float64{1}); err == nil {
		t.Error("1-input mixer accepted")
	}
	if _, err := NewVideoMixer("m", db, []float64{1, -1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewVideoWriter("w", db, media.TypeCDAudio); err == nil {
		t.Error("audio type accepted by VideoWriter")
	}
	if _, err := NewAudioReader("a", db, media.TypeRawVideo30); err == nil {
		t.Error("video type accepted by AudioReader")
	}
	if _, err := NewAudioSink("a", db, media.TypeRawVideo30, media.AudioQualityCD, 0); err == nil {
		t.Error("video type accepted by AudioSink")
	}
	if _, err := NewAudioWriter("a", db, media.TypeRawVideo30); err == nil {
		t.Error("video type accepted by AudioWriter")
	}
	if _, err := NewAudioSynthesizer("s", db, nil, media.AudioQualityCD); err == nil {
		t.Error("nil sequence accepted")
	}
	if _, err := NewAudioSynthesizer("s", db, synth.Jingle(100, 1), media.AudioQualityUnspecified); err == nil {
		t.Error("unspecified quality accepted")
	}
	if _, err := NewMoveSource("m", app, render.Camera{}, nil, 5); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := NewMoveSource("m", app, render.Camera{}, func(int, render.Camera) render.Camera { return render.Camera{} }, 0); err == nil {
		t.Error("zero steps accepted")
	}
}

func TestFig2ChainReadDecodeDisplay(t *testing.T) {
	// Fig. 2 top: read -> decode -> display over compressed storage.
	clip := motionClip(30)
	enc, err := codec.MPEG.Encode(clip)
	if err != nil {
		t.Fatal(err)
	}
	reader, err := NewVideoReader("read", db, codec.TypeMPEGVideo)
	if err != nil {
		t.Fatal(err)
	}
	if err := reader.Bind(enc, "out"); err != nil {
		t.Fatal(err)
	}
	sd, err := codec.NewVideoStreamDecoder(32, 24, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewVideoDecoder("decode", db, codec.TypeMPEGVideo, sd)
	if err != nil {
		t.Fatal(err)
	}
	win := NewVideoWindow("display", app, media.VideoQuality{Width: 32, Height: 24, Depth: 8, FPS: 30}, 0)
	win.KeepFrames()

	g := activity.NewGraph("fig2")
	addAll(t, g, reader, dec, win)
	connect(t, g, reader, "out", dec, "in")
	connect(t, g, dec, "out", win, "in")
	runGraph(t, g)

	if win.FramesShown() != 30 {
		t.Fatalf("displayed %d frames, want 30", win.FramesShown())
	}
	// Streamed decode matches batch decode exactly.
	batch, err := codec.MPEG.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range win.Frames() {
		bf, _ := batch.Frame(i)
		if !f.Equal(bf) {
			t.Fatalf("frame %d differs from batch decode", i)
		}
	}
	if win.BytesShown() != 30*32*24 {
		t.Errorf("BytesShown = %d", win.BytesShown())
	}
}

func TestEncodeDecodeRoundTripThroughActivities(t *testing.T) {
	// digitizer -> encoder -> decoder -> window reproduces the digitized
	// frames within the codec's error bound.
	src := motionClip(20)
	gen := func(i int) *media.Frame { f, _ := src.Frame(i); return f }
	dig, err := NewVideoDigitizer("cam", db, gen, 20)
	if err != nil {
		t.Fatal(err)
	}
	se, err := codec.NewInterStreamEncoder(0, 5) // lossless
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewVideoEncoder("enc", db, codec.TypeMPEGVideo, se)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := codec.NewVideoStreamDecoder(32, 24, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewVideoDecoder("dec", app, codec.TypeMPEGVideo, sd)
	if err != nil {
		t.Fatal(err)
	}
	win := NewVideoWindow("win", app, media.VideoQuality{}, 0)
	win.KeepFrames()

	g := activity.NewGraph("roundtrip")
	addAll(t, g, dig, enc, dec, win)
	connect(t, g, dig, "out", enc, "in")
	connect(t, g, enc, "out", dec, "in")
	connect(t, g, dec, "out", win, "in")
	runGraph(t, g)

	if len(win.Frames()) != 20 {
		t.Fatalf("got %d frames", len(win.Frames()))
	}
	for i, f := range win.Frames() {
		orig, _ := src.Frame(i)
		if !f.Equal(orig) {
			t.Fatalf("frame %d not lossless through activity chain", i)
		}
	}
}

func TestVideoReaderCueAndStream(t *testing.T) {
	dm := device.NewManager()
	disk := device.NewDisk("disk0", 10_000_000, 10*media.MBPerSecond, avtime.Millisecond)
	if err := dm.Register(disk); err != nil {
		t.Fatal(err)
	}
	st := storage.NewStore(dm)
	clip := motionClip(60)
	seg, err := st.Place(clip, "disk0")
	if err != nil {
		t.Fatal(err)
	}
	stream, _, err := st.OpenStream(seg.ID(), media.MBPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()

	reader, err := NewVideoReader("r", db, media.TypeRawVideo30)
	if err != nil {
		t.Fatal(err)
	}
	if err := reader.Bind(clip, "out"); err != nil {
		t.Fatal(err)
	}
	reader.AttachStream(stream)
	if err := reader.Cue(avtime.Second); err != nil { // skip 30 frames
		t.Fatal(err)
	}
	win := NewVideoWindow("w", app, media.VideoQuality{}, avtime.Second)
	g := activity.NewGraph("g")
	addAll(t, g, reader, win)
	connect(t, g, reader, "out", win, "in")
	runGraph(t, g)

	if win.FramesShown() != 30 {
		t.Errorf("cued playback showed %d frames, want 30", win.FramesShown())
	}
	// Each 768-byte frame at 1 MB/s reserved = 768µs read latency; the
	// first frame also pays the 1ms startup seek.
	if got := win.Arrivals()[0]; got != 768*avtime.Microsecond+avtime.Millisecond {
		t.Errorf("first arrival = %v, want 1.768ms", got)
	}
	if got := win.Arrivals()[1] - 33333*avtime.Microsecond; got != 768*avtime.Microsecond {
		t.Errorf("steady-state read latency = %v, want 768µs", got)
	}
	if stream.BytesRead() != 30*768 {
		t.Errorf("stream read %d bytes", stream.BytesRead())
	}
}

func TestVideoReaderWithoutBindingFails(t *testing.T) {
	reader, err := NewVideoReader("r", db, media.TypeRawVideo30)
	if err != nil {
		t.Fatal(err)
	}
	g := activity.NewGraph("g")
	addAll(t, g, reader)
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(activity.RunConfig{Clock: sched.NewVirtualClock(0)}); err == nil ||
		!strings.Contains(err.Error(), "no bound value") {
		t.Errorf("unbound reader error = %v", err)
	}
}

func TestVideoTeeFansOut(t *testing.T) {
	clip := motionClip(10)
	reader, err := NewVideoReader("r", db, media.TypeRawVideo30)
	if err != nil {
		t.Fatal(err)
	}
	if err := reader.Bind(clip, "out"); err != nil {
		t.Fatal(err)
	}
	tee, err := NewVideoTee("tee", db, 2)
	if err != nil {
		t.Fatal(err)
	}
	w1 := NewVideoWindow("w1", app, media.VideoQuality{}, 0)
	w2 := NewVideoWindow("w2", app, media.VideoQuality{}, 0)
	w1.KeepFrames()
	w2.KeepFrames()
	g := activity.NewGraph("g")
	addAll(t, g, reader, tee, w1, w2)
	connect(t, g, reader, "out", tee, "in")
	connect(t, g, tee, "out0", w1, "in")
	connect(t, g, tee, "out1", w2, "in")
	runGraph(t, g)
	if w1.FramesShown() != 10 || w2.FramesShown() != 10 {
		t.Fatalf("tee outputs: %d, %d", w1.FramesShown(), w2.FramesShown())
	}
	for i := range w1.Frames() {
		if !w1.Frames()[i].Equal(w2.Frames()[i]) {
			t.Fatal("tee outputs differ")
		}
	}
}

func TestVideoMixerBlends(t *testing.T) {
	// Two constant-shade clips mixed 1:1 yield the average shade.
	mk := func(shade byte) *media.VideoValue {
		v := media.NewVideoValue(media.TypeRawVideo30, 8, 8, 8)
		for i := 0; i < 10; i++ {
			f := media.NewFrame(8, 8, 8)
			for p := range f.Pix {
				f.Pix[p] = shade
			}
			if err := v.AppendFrame(f); err != nil {
				t.Fatal(err)
			}
		}
		return v
	}
	rA, err := NewVideoReader("a", db, media.TypeRawVideo30)
	if err != nil {
		t.Fatal(err)
	}
	if err := rA.Bind(mk(100), "out"); err != nil {
		t.Fatal(err)
	}
	rB, err := NewVideoReader("b", db, media.TypeRawVideo30)
	if err != nil {
		t.Fatal(err)
	}
	if err := rB.Bind(mk(200), "out"); err != nil {
		t.Fatal(err)
	}
	mix, err := NewVideoMixer("mix", db, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	win := NewVideoWindow("w", app, media.VideoQuality{}, 0)
	win.KeepFrames()
	g := activity.NewGraph("g")
	addAll(t, g, rA, rB, mix, win)
	connect(t, g, rA, "out", mix, "in0")
	connect(t, g, rB, "out", mix, "in1")
	connect(t, g, mix, "out", win, "in")
	runGraph(t, g)
	if win.FramesShown() != 10 {
		t.Fatalf("mixed %d frames", win.FramesShown())
	}
	if got := win.Frames()[0].Pix[0]; got != 150 {
		t.Errorf("1:1 mix of 100 and 200 = %d, want 150", got)
	}
}

func TestVideoMixerGeometryMismatch(t *testing.T) {
	mix, err := NewVideoMixer("mix", db, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	tc := activity.NewTickContext(0, 0, avtime.Interval{})
	tc.SetIn("in0", &activity.Chunk{Payload: media.NewFrame(8, 8, 8)})
	tc.SetIn("in1", &activity.Chunk{Payload: media.NewFrame(4, 4, 8)})
	if err := mix.Tick(tc); err == nil {
		t.Error("geometry mismatch accepted")
	}
}

func TestVideoWindowQualityEnforced(t *testing.T) {
	win := NewVideoWindow("w", app, media.VideoQuality{Width: 320, Height: 240, Depth: 8, FPS: 30}, 0)
	tc := activity.NewTickContext(0, 0, avtime.Interval{})
	tc.SetIn("in", &activity.Chunk{Payload: media.NewFrame(8, 8, 8)})
	if err := win.Tick(tc); err == nil {
		t.Error("wrong-geometry frame accepted")
	}
}

func TestVideoWriterRecordsIntoBoundValue(t *testing.T) {
	// digitizer -> writer: recording a live source into a stored value.
	gen := func(i int) *media.Frame {
		f := media.NewFrame(4, 4, 8)
		f.Pix[0] = byte(i)
		return f
	}
	dig, err := NewVideoDigitizer("cam", db, gen, 15)
	if err != nil {
		t.Fatal(err)
	}
	wr, err := NewVideoWriter("rec", db, media.TypeRawVideo30)
	if err != nil {
		t.Fatal(err)
	}
	dst := media.NewVideoValue(media.TypeRawVideo30, 4, 4, 8)
	if err := wr.Bind(dst, "in"); err != nil {
		t.Fatal(err)
	}
	g := activity.NewGraph("rec")
	addAll(t, g, dig, wr)
	connect(t, g, dig, "out", wr, "in")
	runGraph(t, g)
	if dst.NumFrames() != 15 {
		t.Fatalf("recorded %d frames", dst.NumFrames())
	}
	f, _ := dst.Frame(7)
	if f.Pix[0] != 7 {
		t.Error("recorded content wrong")
	}
}

func TestAudioPipelineSampleAccurate(t *testing.T) {
	tone, err := synth.Tone(media.AudioQualityCD, 440, 1.0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	reader, err := NewAudioReader("ar", db, media.TypeCDAudio)
	if err != nil {
		t.Fatal(err)
	}
	if err := reader.Bind(tone, "out"); err != nil {
		t.Fatal(err)
	}
	sink, err := NewAudioSink("as", app, media.TypeCDAudio, media.AudioQualityCD, avtime.Second)
	if err != nil {
		t.Fatal(err)
	}
	g := activity.NewGraph("audio")
	addAll(t, g, reader, sink)
	connect(t, g, reader, "out", sink, "in")
	runGraph(t, g)
	if sink.SamplesPlayed() != 44100 {
		t.Errorf("played %d samples, want 44100", sink.SamplesPlayed())
	}
	if sink.Monitor().Count() == 0 {
		t.Error("monitor empty")
	}
	if len(sink.Arrivals()) == 0 {
		t.Error("no arrivals recorded")
	}
}

func TestAudioReaderCue(t *testing.T) {
	tone, err := synth.Tone(media.AudioQualityVoice, 220, 2.0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	reader, err := NewAudioReader("ar", db, media.TypeVoiceAudio)
	if err != nil {
		t.Fatal(err)
	}
	if err := reader.Bind(tone, "out"); err != nil {
		t.Fatal(err)
	}
	if err := reader.Cue(avtime.Second); err != nil {
		t.Fatal(err)
	}
	sink, err := NewAudioSink("as", app, media.TypeVoiceAudio, media.AudioQualityVoice, avtime.Second)
	if err != nil {
		t.Fatal(err)
	}
	g := activity.NewGraph("g")
	addAll(t, g, reader, sink)
	connect(t, g, reader, "out", sink, "in")
	runGraph(t, g)
	if sink.SamplesPlayed() != 8000 { // second half only
		t.Errorf("played %d samples, want 8000", sink.SamplesPlayed())
	}
}

func TestAudioWriterRecords(t *testing.T) {
	tone, err := synth.Tone(media.AudioQualityVoice, 220, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	reader, err := NewAudioReader("ar", db, media.TypeVoiceAudio)
	if err != nil {
		t.Fatal(err)
	}
	if err := reader.Bind(tone, "out"); err != nil {
		t.Fatal(err)
	}
	wr, err := NewAudioWriter("aw", db, media.TypeVoiceAudio)
	if err != nil {
		t.Fatal(err)
	}
	dst := media.NewAudioValue(media.TypeVoiceAudio, 1)
	if err := wr.Bind(dst, "in"); err != nil {
		t.Fatal(err)
	}
	g := activity.NewGraph("g")
	addAll(t, g, reader, wr)
	connect(t, g, reader, "out", wr, "in")
	runGraph(t, g)
	if !dst.Equal(tone) {
		t.Error("recorded audio differs from source")
	}
}

func TestAudioSynthesizerSource(t *testing.T) {
	seq := synth.Jingle(1000, 9)
	src, err := NewAudioSynthesizer("midi", db, seq, media.AudioQualityFM)
	if err != nil {
		t.Fatal(err)
	}
	if src.Class() != "AudioSynthesizer" {
		t.Error("class name wrong")
	}
	sink, err := NewAudioSink("out", app, media.TypeFMAudio, media.AudioQualityFM, avtime.Second)
	if err != nil {
		t.Fatal(err)
	}
	g := activity.NewGraph("g")
	addAll(t, g, src, sink)
	connect(t, g, src, "out", sink, "in")
	runGraph(t, g)
	if sink.SamplesPlayed() != 22050 {
		t.Errorf("played %d samples, want 22050", sink.SamplesPlayed())
	}
}

func TestSubtitlePipeline(t *testing.T) {
	subs, err := synth.Subtitles([]string{"hello", "world"}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	reader := NewSubtitleReader("sr", db)
	if err := reader.Bind(subs, "out"); err != nil {
		t.Fatal(err)
	}
	sink := NewSubtitleSink("ss", app)
	g := activity.NewGraph("g")
	addAll(t, g, reader, sink)
	connect(t, g, reader, "out", sink, "in")
	runGraph(t, g)
	var texts []string
	for _, c := range sink.Cues() {
		texts = append(texts, c.Text)
	}
	// The one-tick gap between cues is invisible at the 30Hz graph rate,
	// so the visible changes are hello -> world.
	want := []string{"hello", "world"}
	if len(texts) != len(want) {
		t.Fatalf("cue changes = %q", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("cue %d = %q, want %q", i, texts[i], want[i])
		}
	}
}

func TestSubtitleGapEmitsBlank(t *testing.T) {
	// A gap wider than a graph tick arrives as an empty cue change.
	subs := media.NewTextStreamValue(3000)
	if err := subs.AddCue(media.Cue{At: 0, Dur: 1000, Text: "first"}); err != nil {
		t.Fatal(err)
	}
	if err := subs.AddCue(media.Cue{At: 2000, Dur: 1000, Text: "second"}); err != nil {
		t.Fatal(err)
	}
	reader := NewSubtitleReader("sr", db)
	if err := reader.Bind(subs, "out"); err != nil {
		t.Fatal(err)
	}
	sink := NewSubtitleSink("ss", app)
	g := activity.NewGraph("g")
	addAll(t, g, reader, sink)
	connect(t, g, reader, "out", sink, "in")
	runGraph(t, g)
	var texts []string
	for _, c := range sink.Cues() {
		texts = append(texts, c.Text)
	}
	want := []string{"first", "", "second"}
	if len(texts) != len(want) {
		t.Fatalf("cue changes = %q", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("cue %d = %q, want %q", i, texts[i], want[i])
		}
	}
}

func TestVirtualWorldPipeline(t *testing.T) {
	// Fig. 4 top path: move + video source -> render (client side) ->
	// window.
	world := render.Museum()
	r := render.NewRenderer(world, 48, 36)
	mv, err := NewMoveSource("move", app, render.Camera{X: 8, Y: 6, Angle: 0}, OrbitPolicy(world, 0.1, 0.05), 20)
	if err != nil {
		t.Fatal(err)
	}
	vid, err := NewVideoReader("videosrc", app, media.TypeRawVideo30)
	if err != nil {
		t.Fatal(err)
	}
	if err := vid.Bind(motionClip(20), "out"); err != nil {
		t.Fatal(err)
	}
	ra := NewRenderActivity("render", app, r)
	win := NewVideoWindow("view", app, media.VideoQuality{Width: 48, Height: 36, Depth: 8, FPS: 30}, 0)
	win.KeepFrames()

	g := activity.NewGraph("vworld")
	addAll(t, g, mv, vid, ra, win)
	connect(t, g, mv, "out", ra, "move")
	connect(t, g, vid, "out", ra, "video")
	connect(t, g, ra, "out", win, "in")
	runGraph(t, g)

	if win.FramesShown() != 20 {
		t.Fatalf("rendered %d frames, want 20", win.FramesShown())
	}
	// Moving camera makes consecutive frames differ.
	distinct := 0
	fs := win.Frames()
	for i := 1; i < len(fs); i++ {
		if !fs[i].Equal(fs[i-1]) {
			distinct++
		}
	}
	if distinct < 15 {
		t.Errorf("only %d distinct consecutive frames", distinct)
	}
}

func TestMultiSourceSinkSealing(t *testing.T) {
	ms := NewMultiSource("dbSource", db)
	if err := SealMultiSource(ms); err == nil {
		t.Error("empty MultiSource sealed")
	}
	v, err := NewVideoReader("videoTrack", db, media.TypeRawVideo30)
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Install(v); err != nil {
		t.Fatal(err)
	}
	if err := SealMultiSource(ms); err != nil {
		t.Fatal(err)
	}
	if _, ok := ms.Port("out"); !ok {
		t.Error("mux out not exported")
	}

	sink := NewMultiSink("appSink", app)
	if err := SealMultiSink(sink); err == nil {
		t.Error("empty MultiSink sealed")
	}
	w := NewVideoWindow("videoTrack", app, media.VideoQuality{}, 0)
	if err := sink.Install(w); err != nil {
		t.Fatal(err)
	}
	if err := SealMultiSink(sink); err != nil {
		t.Fatal(err)
	}
	if sink.SyncController() == nil {
		t.Error("MultiSink without sync")
	}
	// Sealing a sink whose child lacks an in port fails.
	ms2 := NewMultiSource("x", db)
	wOnly := NewVideoWindow("w", db, media.VideoQuality{}, 0)
	if err := ms2.Install(wOnly); err != nil {
		t.Fatal(err)
	}
	if err := SealMultiSource(ms2); err == nil {
		t.Error("MultiSource sealed over sink child")
	}
	sink2 := NewMultiSink("y", db)
	rOnly, _ := NewVideoReader("r", db, media.TypeRawVideo30)
	if err := sink2.Install(rOnly); err != nil {
		t.Fatal(err)
	}
	if err := SealMultiSink(sink2); err == nil {
		t.Error("MultiSink sealed over source child")
	}
}

func TestNewscastSynchronizedPlayback(t *testing.T) {
	// The §4.3 program: MultiSource{video,audio} -> one connection ->
	// MultiSink{window,dac}, with jittery per-track latencies.
	frames := 60
	clip := motionClip(frames)
	eng, err := synth.Speech(media.AudioQualityVoice, 2.0, 3)
	if err != nil {
		t.Fatal(err)
	}

	ms := NewMultiSource("dbSource", db)
	vr, err := NewVideoReader("video", db, media.TypeRawVideo30)
	if err != nil {
		t.Fatal(err)
	}
	vr.SetLatency(sched.NewLatency(12*avtime.Millisecond, 6*avtime.Millisecond, 21))
	if err := vr.Bind(clip, "out"); err != nil {
		t.Fatal(err)
	}
	ar, err := NewAudioReader("audio", db, media.TypeVoiceAudio)
	if err != nil {
		t.Fatal(err)
	}
	ar.SetLatency(sched.NewLatency(2*avtime.Millisecond, avtime.Millisecond, 22))
	if err := ar.Bind(eng, "out"); err != nil {
		t.Fatal(err)
	}
	if err := ms.Install(vr); err != nil {
		t.Fatal(err)
	}
	if err := ms.Install(ar); err != nil {
		t.Fatal(err)
	}
	if err := SealMultiSource(ms); err != nil {
		t.Fatal(err)
	}

	sink := NewMultiSink("appSink", app)
	win := NewVideoWindow("video", app, media.VideoQuality{}, 50*avtime.Millisecond)
	dac, err := NewAudioSink("audio", app, media.TypeVoiceAudio, media.AudioQualityVoice, 50*avtime.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Install(win); err != nil {
		t.Fatal(err)
	}
	if err := sink.Install(dac); err != nil {
		t.Fatal(err)
	}
	if err := SealMultiSink(sink); err != nil {
		t.Fatal(err)
	}

	g := activity.NewGraph("newscast")
	addAll(t, g, ms, sink)
	connect(t, g, ms, "out", sink, "in")
	runGraph(t, g)

	if win.FramesShown() != frames {
		t.Errorf("video: %d frames, want %d", win.FramesShown(), frames)
	}
	if dac.SamplesPlayed() != 16000 {
		t.Errorf("audio: %d samples, want 16000", dac.SamplesPlayed())
	}
	// Synchronization holds: steady-state skew is bounded well below the
	// raw latency difference (~10ms).
	va, aa := win.Arrivals(), dac.Arrivals()
	n := min(len(va), len(aa))
	var worst avtime.WorldTime
	for i := 20; i < n; i++ {
		s := va[i] - aa[i]
		if s < 0 {
			s = -s
		}
		if s > worst {
			worst = s
		}
	}
	if worst > 8*avtime.Millisecond {
		t.Errorf("steady-state skew %v too large", worst)
	}
}

func TestLiveCaptureWhileViewing(t *testing.T) {
	// The paper's live-source case: a camera feed cannot be compressed
	// ahead of time.  The digitizer's raw stream is teed: one branch is
	// encoded and recorded, the other viewed live.
	src := motionClip(40)
	gen := func(i int) *media.Frame { f, _ := src.Frame(i); return f }
	camera, err := NewVideoDigitizer("camera", db, gen, 40)
	if err != nil {
		t.Fatal(err)
	}
	tee, err := NewVideoTee("tee", db, 2)
	if err != nil {
		t.Fatal(err)
	}
	se, err := codec.NewInterStreamEncoder(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewVideoEncoder("enc", db, codec.TypeMPEGVideo, se)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewVideoWriter("rec", db, codec.TypeMPEGVideo)
	if err != nil {
		t.Fatal(err)
	}
	monitorWin := NewVideoWindow("monitor", db, media.VideoQuality{}, avtime.Second)

	g := activity.NewGraph("live")
	addAll(t, g, camera, tee, enc, rec, monitorWin)
	connect(t, g, camera, "out", tee, "in")
	connect(t, g, tee, "out0", enc, "in")
	connect(t, g, enc, "out", rec, "in")
	connect(t, g, tee, "out1", monitorWin, "in")
	runGraph(t, g)

	if monitorWin.FramesShown() != 40 {
		t.Errorf("monitor showed %d frames", monitorWin.FramesShown())
	}
	collected := rec.Collected()
	if len(collected) != 40 {
		t.Fatalf("recorded %d encoded frames", len(collected))
	}
	// The recording decodes back to the captured material.
	sd, err := codec.NewVideoStreamDecoder(32, 24, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, el := range collected {
		f, err := sd.DecodeFrame(el.(*codec.EncodedFrame))
		if err != nil {
			t.Fatal(err)
		}
		orig, _ := src.Frame(i)
		d := 0
		for p := range f.Pix {
			e := int(f.Pix[p]) - int(orig.Pix[p])
			if e < 0 {
				e = -e
			}
			if e > d {
				d = e
			}
		}
		if d > 2 {
			t.Fatalf("recorded frame %d error %d", i, d)
		}
	}
}

func TestCCIR25fpsPacing(t *testing.T) {
	// A CCIR 601 (25 fps) value plays at its own rate: the graph ticks at
	// 25 Hz, so 50 frames span exactly two seconds of world time.
	v := media.NewVideoValue(media.TypeCCIRVideo, 16, 12, 8)
	for i := 0; i < 50; i++ {
		if err := v.AppendFrame(media.NewFrame(16, 12, 8)); err != nil {
			t.Fatal(err)
		}
	}
	reader, err := NewVideoReader("ccir", db, media.TypeCCIRVideo)
	if err != nil {
		t.Fatal(err)
	}
	if err := reader.Bind(v, "out"); err != nil {
		t.Fatal(err)
	}
	// The VideoWindow port is typed raw30, so sink the CCIR stream into a
	// CCIR-typed writer.
	wr, err := NewVideoWriter("w", app, media.TypeCCIRVideo)
	if err != nil {
		t.Fatal(err)
	}
	dst := media.NewVideoValue(media.TypeCCIRVideo, 16, 12, 8)
	if err := wr.Bind(dst, "in"); err != nil {
		t.Fatal(err)
	}
	g := activity.NewGraph("ccir")
	addAll(t, g, reader, wr)
	connect(t, g, reader, "out", wr, "in")
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	clock := sched.NewVirtualClock(0)
	stats, err := g.Run(activity.RunConfig{Clock: clock, Rate: avtime.RateVideo25})
	if err != nil {
		t.Fatal(err)
	}
	if dst.NumFrames() != 50 {
		t.Errorf("recorded %d frames", dst.NumFrames())
	}
	if stats.Ticks != 50 {
		t.Errorf("ticks = %d", stats.Ticks)
	}
	if clock.Now() != 2*avtime.Second {
		t.Errorf("50 frames at 25fps took %v, want 2s", clock.Now())
	}
}

func TestTimelinePlacementHonoredInPlayback(t *testing.T) {
	// Fig. 1 semantics during playback: the audio track is Translated to
	// start 1s into the 2s video, so the first audio block arrives around
	// world time 1s and exactly 1s of audio plays.
	video := motionClip(60) // 2s
	narration, err := synth.Speech(media.AudioQualityVoice, 1.0, 8)
	if err != nil {
		t.Fatal(err)
	}
	narration.Translate(avtime.Second) // [1s, 2s)

	ms := NewMultiSource("dbSource", db)
	vr, err := NewVideoReader("video", db, media.TypeRawVideo30)
	if err != nil {
		t.Fatal(err)
	}
	if err := vr.Bind(video, "out"); err != nil {
		t.Fatal(err)
	}
	ar, err := NewAudioReader("audio", db, media.TypeVoiceAudio)
	if err != nil {
		t.Fatal(err)
	}
	if err := ar.Bind(narration, "out"); err != nil {
		t.Fatal(err)
	}
	if err := ms.Install(vr); err != nil {
		t.Fatal(err)
	}
	if err := ms.Install(ar); err != nil {
		t.Fatal(err)
	}
	if err := SealMultiSource(ms); err != nil {
		t.Fatal(err)
	}

	sink := NewMultiSink("appSink", app)
	win := NewVideoWindow("video", app, media.VideoQuality{}, avtime.Second)
	dac, err := NewAudioSink("audio", app, media.TypeVoiceAudio, media.AudioQualityVoice, avtime.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Install(win); err != nil {
		t.Fatal(err)
	}
	if err := sink.Install(dac); err != nil {
		t.Fatal(err)
	}
	if err := SealMultiSink(sink); err != nil {
		t.Fatal(err)
	}

	g := activity.NewGraph("timeline")
	addAll(t, g, ms, sink)
	connect(t, g, ms, "out", sink, "in")
	runGraph(t, g)

	if win.FramesShown() != 60 {
		t.Errorf("video frames = %d", win.FramesShown())
	}
	if dac.SamplesPlayed() != 8000 {
		t.Errorf("audio samples = %d, want 8000 (1s)", dac.SamplesPlayed())
	}
	if len(dac.Arrivals()) == 0 {
		t.Fatal("no audio arrived")
	}
	first := dac.Arrivals()[0]
	if first < avtime.Second || first > 1100*avtime.Millisecond {
		t.Errorf("first audio arrival = %v, want ~1s", first)
	}
}

func TestVideoReaderTimelineOffset(t *testing.T) {
	clip := motionClip(30)
	clip.Translate(500 * avtime.Millisecond)
	reader, err := NewVideoReader("r", db, media.TypeRawVideo30)
	if err != nil {
		t.Fatal(err)
	}
	if err := reader.Bind(clip, "out"); err != nil {
		t.Fatal(err)
	}
	win := NewVideoWindow("w", app, media.VideoQuality{}, avtime.Second)
	g := activity.NewGraph("g")
	addAll(t, g, reader, win)
	connect(t, g, reader, "out", win, "in")
	runGraph(t, g)
	if win.FramesShown() != 30 {
		t.Errorf("frames = %d", win.FramesShown())
	}
	if first := win.Arrivals()[0]; first < 500*avtime.Millisecond {
		t.Errorf("first frame at %v, before the 0.5s offset", first)
	}
}

func TestSubtitleTimelineOffset(t *testing.T) {
	subs, err := synth.Subtitles([]string{"late"}, 500)
	if err != nil {
		t.Fatal(err)
	}
	subs.Translate(avtime.Second)
	reader := NewSubtitleReader("sr", db)
	if err := reader.Bind(subs, "out"); err != nil {
		t.Fatal(err)
	}
	sink := NewSubtitleSink("ss", app)
	g := activity.NewGraph("g")
	addAll(t, g, reader, sink)
	connect(t, g, reader, "out", sink, "in")
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	stats, err := g.Run(activity.RunConfig{Clock: sched.NewVirtualClock(0), MaxTicks: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(sink.Cues()) != 1 || sink.Cues()[0].Text != "late" {
		t.Fatalf("cues = %v", sink.Cues())
	}
	if stats.Ticks < 30 {
		t.Errorf("stream ended before the offset elapsed: %d ticks", stats.Ticks)
	}
}
