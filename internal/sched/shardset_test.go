package sched

import (
	"math/rand"
	"testing"

	"avdb/internal/avtime"
)

// shardset_test.go pins the PR 9 sharded admission book to the same
// executable specification the heap is pinned to: a ShardedRunSet with
// any shard count, fed any randomized Admit/Reschedule/Remove/step
// sequence, must produce exactly the due batches of the single
// linearRunSet — same times, same ids, same global admission order —
// no matter how admissions are spread across shards.  That equivalence
// is what lets the parallel engine claim its batch stream is identical
// to the serial engine's.

// TestShardedRunSetMatchesLinear drives sharded sets of several widths
// against the linear reference.  Shard choice per admit is random —
// harsher than the engine's round-robin/stripe keying, since it also
// exercises lopsided and empty shards — and the k-way merge sees
// perfectly interleaved ids whenever admissions round-robin.
func TestShardedRunSetMatchesLinear(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 5, 16} {
		for _, seed := range []int64{5, 23, 97, 2026} {
			rng := rand.New(rand.NewSource(seed))
			sharded := NewShardedRunSet(shards)
			var linear linearRunSet
			var live []RunID

			due := func() avtime.WorldTime {
				return avtime.WorldTime(rng.Intn(6)) * 10 * avtime.Millisecond
			}
			check := func(step int) {
				sd, sids, sok := sharded.DueBatch()
				// Copy before the idempotence recheck: the buffer is reused.
				first := append([]RunID(nil), sids...)
				sd2, sids2, sok2 := sharded.DueBatch()
				if sok != sok2 || sd != sd2 || len(first) != len(sids2) {
					t.Fatalf("shards %d seed %d step %d: DueBatch not idempotent", shards, seed, step)
				}
				for i := range first {
					if first[i] != sids2[i] {
						t.Fatalf("shards %d seed %d step %d: reused buffer corrupted batch: %v vs %v",
							shards, seed, step, first, sids2)
					}
				}
				ld, lids, lok := linear.DueBatch()
				if sok != lok || sd != ld || len(first) != len(lids) {
					t.Fatalf("shards %d seed %d step %d: sharded batch (%v,%v,%v) != linear (%v,%v,%v)",
						shards, seed, step, sd, first, sok, ld, lids, lok)
				}
				for i := range first {
					if first[i] != lids[i] {
						t.Fatalf("shards %d seed %d step %d: batch order diverged: %v vs %v",
							shards, seed, step, first, lids)
					}
				}
				if sharded.Len() != len(linear.entries) {
					t.Fatalf("shards %d seed %d step %d: Len %d != %d",
						shards, seed, step, sharded.Len(), len(linear.entries))
				}
			}

			for step := 0; step < 2500; step++ {
				switch op := rng.Intn(10); {
				case op < 4 || len(live) == 0: // admit into a random shard
					d := due()
					sid := sharded.Admit(d, rng.Intn(shards))
					lid := linear.Admit(d)
					if sid != lid {
						t.Fatalf("shards %d seed %d step %d: Admit ids diverge: %v != %v",
							shards, seed, step, sid, lid)
					}
					if home, ok := sharded.Shard(sid); !ok || home < 0 || home >= shards {
						t.Fatalf("shards %d seed %d step %d: Shard(%v) = %d,%v",
							shards, seed, step, sid, home, ok)
					}
					live = append(live, sid)
				case op < 6: // reschedule a random live run
					id := live[rng.Intn(len(live))]
					d := due()
					sharded.Reschedule(id, d)
					linear.Reschedule(id, d)
				case op < 8: // remove a random live run
					i := rng.Intn(len(live))
					id := live[i]
					sharded.Remove(id)
					linear.Remove(id)
					if _, ok := sharded.Shard(id); ok {
						t.Fatalf("shards %d seed %d step %d: Shard(%v) still homed after Remove",
							shards, seed, step, id)
					}
					live = append(live[:i], live[i+1:]...)
				default: // the engine's step: pop the batch, reschedule each member
					_, ids, ok := sharded.DueBatch()
					if ok {
						for _, id := range ids {
							d := due()
							sharded.Reschedule(id, d)
							linear.Reschedule(id, d)
						}
					}
				}
				check(step)
			}
		}
	}
}

// TestShardedRunSetEdges covers the corners the randomized drive can
// miss: empty set, negative/overflowing shard indexes, unknown ids.
func TestShardedRunSetEdges(t *testing.T) {
	s := NewShardedRunSet(0) // clamps to 1
	if s.Shards() != 1 {
		t.Fatalf("Shards() = %d, want 1", s.Shards())
	}
	if _, _, ok := s.DueBatch(); ok {
		t.Fatal("DueBatch on empty set reported ok")
	}
	s.Reschedule(99, avtime.Millisecond) // unknown id: no-op
	s.Remove(99)                         // unknown id: no-op

	s = NewShardedRunSet(4)
	a := s.Admit(10*avtime.Millisecond, -1) // negative wraps
	b := s.Admit(10*avtime.Millisecond, 7)  // overflow wraps
	if home, ok := s.Shard(a); !ok || home != 3 {
		t.Fatalf("Shard(a) = %d,%v, want 3", home, ok)
	}
	if home, ok := s.Shard(b); !ok || home != 3 {
		t.Fatalf("Shard(b) = %d,%v, want 3", home, ok)
	}
	due, ids, ok := s.DueBatch()
	if !ok || due != 10*avtime.Millisecond || len(ids) != 2 || ids[0] != a || ids[1] != b {
		t.Fatalf("DueBatch = %v,%v,%v", due, ids, ok)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

// TestRunSetMinDue pins the peek the sharded merge relies on.
func TestRunSetMinDue(t *testing.T) {
	var s RunSet
	if _, ok := s.MinDue(); ok {
		t.Fatal("MinDue on empty set reported ok")
	}
	s.Admit(30 * avtime.Millisecond)
	id := s.Admit(10 * avtime.Millisecond)
	if d, ok := s.MinDue(); !ok || d != 10*avtime.Millisecond {
		t.Fatalf("MinDue = %v,%v, want 10ms", d, ok)
	}
	s.Remove(id)
	if d, ok := s.MinDue(); !ok || d != 30*avtime.Millisecond {
		t.Fatalf("MinDue = %v,%v, want 30ms", d, ok)
	}
}
