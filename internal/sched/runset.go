package sched

import (
	"avdb/internal/avtime"
)

// RunID names one admitted run inside a RunSet.
type RunID int64

// RunSet is the admission book the multi-session engine schedules from:
// a set of runs, each with the world time its next tick is due.  Every
// step the engine asks for the batch of runs sharing the earliest due
// time, ticks them, and reschedules each with its new due time.
// Admission order is the tie-break, so the step sequence is
// deterministic for a given admission history regardless of map
// iteration or goroutine interleaving.
//
// The set is an indexed binary min-heap keyed (due, admission order):
// Admit, Reschedule and Remove are O(log n) and DueBatch visits only
// the heap prefix holding the minimum due time, where the original
// linear book paid O(n) per operation on every step.  RunIDs are
// handed out in admission order, so ordering ties by id IS ordering by
// admission.
//
// RunSet is not goroutine-safe; the engine serializes access under its
// own lock.
type RunSet struct {
	next RunID
	heap []runSetEntry // binary min-heap on (due, id)
	pos  map[RunID]int // id -> index in heap

	// DueBatch scratch, reused call to call so the engine's step path
	// allocates nothing in steady state.
	ids   []RunID // result buffer; contents valid until the next DueBatch
	stack []int   // pruned-walk worklist
}

type runSetEntry struct {
	id  RunID
	due avtime.WorldTime
}

// less orders the heap by due time, ties by admission order.
func (s *RunSet) less(i, j int) bool {
	a, b := s.heap[i], s.heap[j]
	if a.due != b.due {
		return a.due < b.due
	}
	return a.id < b.id
}

func (s *RunSet) swap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.pos[s.heap[i].id] = i
	s.pos[s.heap[j].id] = j
}

func (s *RunSet) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			return
		}
		s.swap(i, parent)
		i = parent
	}
}

func (s *RunSet) down(i int) {
	n := len(s.heap)
	for {
		left, right := 2*i+1, 2*i+2
		least := i
		if left < n && s.less(left, least) {
			least = left
		}
		if right < n && s.less(right, least) {
			least = right
		}
		if least == i {
			return
		}
		s.swap(i, least)
		i = least
	}
}

// Admit adds a run due at the given time and returns its id.
func (s *RunSet) Admit(due avtime.WorldTime) RunID {
	s.next++
	id := s.next
	s.admitAt(id, due)
	return id
}

// admitAt enters a run under an externally assigned id.  ShardedRunSet
// uses it to spread one global admission-order id space over several
// shard sets; ids must be unique and increasing per set so the (due,
// id) key still orders ties by admission.
func (s *RunSet) admitAt(id RunID, due avtime.WorldTime) {
	if s.pos == nil {
		s.pos = make(map[RunID]int)
	}
	if id > s.next {
		s.next = id
	}
	s.heap = append(s.heap, runSetEntry{id: id, due: due})
	s.pos[id] = len(s.heap) - 1
	s.up(len(s.heap) - 1)
}

// MinDue reports the earliest due time in the set without collecting
// the batch; ok is false when the set is empty.
func (s *RunSet) MinDue() (avtime.WorldTime, bool) {
	if len(s.heap) == 0 {
		return 0, false
	}
	return s.heap[0].due, true
}

// Reschedule updates a run's next due time.  Unknown ids are ignored
// (the run may have been removed by a concurrent finish).
func (s *RunSet) Reschedule(id RunID, due avtime.WorldTime) {
	i, ok := s.pos[id]
	if !ok {
		return
	}
	s.heap[i].due = due
	s.up(i)
	s.down(i)
}

// Remove deletes a run from the set.
func (s *RunSet) Remove(id RunID) {
	i, ok := s.pos[id]
	if !ok {
		return
	}
	last := len(s.heap) - 1
	s.swap(i, last)
	s.heap = s.heap[:last]
	delete(s.pos, id)
	if i < last {
		s.up(i)
		s.down(i)
	}
}

// Len returns the number of admitted runs.
func (s *RunSet) Len() int { return len(s.heap) }

// DueBatch returns the earliest due time and the ids of every run due
// at exactly that time, in admission order.  ok is false when the set
// is empty.  The walk is pruned at the first entry past the minimum on
// each heap path, so the cost is proportional to the batch, not the
// set.
//
// The returned slice is a buffer owned by the set, valid only until the
// next DueBatch call; callers that keep the batch across calls must
// copy it.  Admit/Reschedule/Remove never touch the buffer, so the
// engine's pop-tick-reschedule step may iterate it freely.
func (s *RunSet) DueBatch() (due avtime.WorldTime, ids []RunID, ok bool) {
	if len(s.heap) == 0 {
		return 0, nil, false
	}
	due = s.heap[0].due
	// Collect every entry at the minimum due: a subtree whose root is
	// past the minimum cannot contain one, by the heap property.
	s.ids = s.ids[:0]
	s.stack = append(s.stack[:0], 0)
	for len(s.stack) > 0 {
		i := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		if i >= len(s.heap) || s.heap[i].due != due {
			continue
		}
		s.ids = append(s.ids, s.heap[i].id)
		s.stack = append(s.stack, 2*i+1, 2*i+2)
	}
	// The walk visits heap order, not id order; an insertion sort over
	// the (small) batch restores admission order without the per-call
	// closure allocation sort.Slice would cost.
	for i := 1; i < len(s.ids); i++ {
		for j := i; j > 0 && s.ids[j] < s.ids[j-1]; j-- {
			s.ids[j], s.ids[j-1] = s.ids[j-1], s.ids[j]
		}
	}
	return due, s.ids, true
}
