package sched

import "avdb/internal/avtime"

// RunID names one admitted run inside a RunSet.
type RunID int64

// RunSet is the admission book the multi-session engine schedules from:
// a set of runs, each with the world time its next tick is due, kept in
// admission order.  Every step the engine asks for the batch of runs
// sharing the earliest due time, ticks them, and reschedules each with
// its new due time.  Admission order is the tie-break, so the step
// sequence is deterministic for a given admission history regardless of
// map iteration or goroutine interleaving.
//
// RunSet is not goroutine-safe; the engine serializes access under its
// own lock.
type RunSet struct {
	next    RunID
	entries []runSetEntry // admission order
}

type runSetEntry struct {
	id  RunID
	due avtime.WorldTime
}

// Admit adds a run due at the given time and returns its id.
func (s *RunSet) Admit(due avtime.WorldTime) RunID {
	s.next++
	id := s.next
	s.entries = append(s.entries, runSetEntry{id: id, due: due})
	return id
}

// Reschedule updates a run's next due time.  Unknown ids are ignored
// (the run may have been removed by a concurrent finish).
func (s *RunSet) Reschedule(id RunID, due avtime.WorldTime) {
	for i := range s.entries {
		if s.entries[i].id == id {
			s.entries[i].due = due
			return
		}
	}
}

// Remove deletes a run from the set, preserving admission order of the
// remainder.
func (s *RunSet) Remove(id RunID) {
	for i := range s.entries {
		if s.entries[i].id == id {
			s.entries = append(s.entries[:i], s.entries[i+1:]...)
			return
		}
	}
}

// Len returns the number of admitted runs.
func (s *RunSet) Len() int { return len(s.entries) }

// DueBatch returns the earliest due time and the ids of every run due at
// exactly that time, in admission order.  ok is false when the set is
// empty.
func (s *RunSet) DueBatch() (due avtime.WorldTime, ids []RunID, ok bool) {
	if len(s.entries) == 0 {
		return 0, nil, false
	}
	due = s.entries[0].due
	for _, e := range s.entries[1:] {
		if e.due < due {
			due = e.due
		}
	}
	for _, e := range s.entries {
		if e.due == due {
			ids = append(ids, e.id)
		}
	}
	return due, ids, true
}
