package sched

import (
	"sync"
	"testing"

	"avdb/internal/avtime"
)

func TestAdvanceGateCommitAndDrain(t *testing.T) {
	c := NewVirtualClock(0)
	g := NewAdvanceGate(c)
	g.Propose(50 * avtime.Millisecond)
	g.Propose(40 * avtime.Millisecond) // lower proposal never wins
	if got := g.Latest(); got != 50*avtime.Millisecond {
		t.Errorf("Latest = %v", got)
	}
	g.CommitTick(33 * avtime.Millisecond)
	if c.Now() != 33*avtime.Millisecond {
		t.Errorf("CommitTick left clock at %v", c.Now())
	}
	// Proposals alone never move the clock; Drain extends it to cover
	// the latest one.
	if got := g.Drain(); got != 50*avtime.Millisecond {
		t.Errorf("Drain = %v, want 50ms", got)
	}
	if c.Now() != 50*avtime.Millisecond {
		t.Errorf("clock after drain = %v", c.Now())
	}
}

func TestAdvanceGateDrainNeverRewinds(t *testing.T) {
	c := NewVirtualClock(0)
	g := NewAdvanceGate(c)
	g.Propose(10 * avtime.Millisecond)
	g.CommitTick(100 * avtime.Millisecond)
	if got := g.Drain(); got != 100*avtime.Millisecond {
		t.Errorf("Drain rewound the clock to %v", got)
	}
}

func TestAdvanceGateConcurrentProposals(t *testing.T) {
	c := NewVirtualClock(0)
	g := NewAdvanceGate(c)
	var wg sync.WaitGroup
	for lane := 1; lane <= 8; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				g.Propose(avtime.WorldTime(lane*100 + i))
			}
		}(lane)
	}
	wg.Wait()
	if got := g.Latest(); got != 899 {
		t.Errorf("Latest = %v, want 899", got)
	}
}

func TestAdvanceGateNeedsClock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil clock accepted")
		}
	}()
	NewAdvanceGate(nil)
}
