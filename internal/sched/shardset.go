package sched

import (
	"avdb/internal/avtime"
)

// ShardedRunSet partitions the admission book across a fixed number of
// shard RunSets so a parallel engine can hand each shard's slice of the
// due batch to a different worker.  Ids come from one global
// admission-order counter, each run lives in exactly one shard (chosen
// at admit and never rehomed), and DueBatch k-way-merges the per-shard
// batches back into global admission order — so the observable batch
// stream is identical to a single RunSet fed the same operations, which
// TestShardedRunSetPropertyOps pins against the retained linear
// reference.
//
// Like RunSet, a ShardedRunSet is not goroutine-safe; the engine
// serializes access under its own lock and only the *ticking* of the
// batch happens in parallel.
type ShardedRunSet struct {
	next   RunID
	shards []RunSet
	home   map[RunID]int // id -> shard index

	// DueBatch scratch, reused call to call.
	ids   []RunID // merged result buffer; valid until the next DueBatch
	take  []int   // shard indexes participating in the current batch
	heads []int   // merge cursor per participating shard
	parts [][]RunID
}

// NewShardedRunSet returns a set split over n shards (n < 1 is treated
// as 1).
func NewShardedRunSet(n int) *ShardedRunSet {
	if n < 1 {
		n = 1
	}
	return &ShardedRunSet{
		shards: make([]RunSet, n),
		home:   make(map[RunID]int),
	}
}

// Shards returns the shard count.
func (s *ShardedRunSet) Shards() int { return len(s.shards) }

// Admit adds a run due at the given time to the given shard (taken
// modulo the shard count) and returns its globally ordered id.
func (s *ShardedRunSet) Admit(due avtime.WorldTime, shard int) RunID {
	shard %= len(s.shards)
	if shard < 0 {
		shard += len(s.shards)
	}
	s.next++
	id := s.next
	s.shards[shard].admitAt(id, due)
	s.home[id] = shard
	return id
}

// Shard reports which shard a run was admitted to.
func (s *ShardedRunSet) Shard(id RunID) (int, bool) {
	shard, ok := s.home[id]
	return shard, ok
}

// Reschedule updates a run's next due time.  Unknown ids are ignored.
func (s *ShardedRunSet) Reschedule(id RunID, due avtime.WorldTime) {
	if shard, ok := s.home[id]; ok {
		s.shards[shard].Reschedule(id, due)
	}
}

// Remove deletes a run from the set.
func (s *ShardedRunSet) Remove(id RunID) {
	if shard, ok := s.home[id]; ok {
		s.shards[shard].Remove(id)
		delete(s.home, id)
	}
}

// Len returns the number of admitted runs across all shards.
func (s *ShardedRunSet) Len() int {
	n := 0
	for i := range s.shards {
		n += s.shards[i].Len()
	}
	return n
}

// DueBatch returns the earliest due time across every shard and the ids
// of every run due at exactly that time, in global admission order.
// Each shard's batch is already admission-ordered, so a k-way merge of
// the participating shards restores the global order in O(batch × k)
// without re-sorting — round-robin admission interleaves ids perfectly
// across shards, which would drive a flat insertion sort quadratic.
//
// The returned slice is a buffer owned by the set, valid until the next
// DueBatch call, with the same reuse contract as RunSet.DueBatch.
func (s *ShardedRunSet) DueBatch() (due avtime.WorldTime, ids []RunID, ok bool) {
	found := false
	for i := range s.shards {
		d, has := s.shards[i].MinDue()
		if has && (!found || d < due) {
			due, found = d, true
		}
	}
	if !found {
		return 0, nil, false
	}
	s.take = s.take[:0]
	s.parts = s.parts[:0]
	for i := range s.shards {
		if d, has := s.shards[i].MinDue(); has && d == due {
			_, part, _ := s.shards[i].DueBatch()
			s.take = append(s.take, i)
			s.parts = append(s.parts, part)
		}
	}
	s.ids = s.ids[:0]
	if len(s.take) == 1 {
		s.ids = append(s.ids, s.parts[0]...)
		return due, s.ids, true
	}
	s.heads = s.heads[:0]
	for range s.take {
		s.heads = append(s.heads, 0)
	}
	for {
		best := -1
		for k := range s.take {
			if s.heads[k] >= len(s.parts[k]) {
				continue
			}
			if best < 0 || s.parts[k][s.heads[k]] < s.parts[best][s.heads[best]] {
				best = k
			}
		}
		if best < 0 {
			break
		}
		s.ids = append(s.ids, s.parts[best][s.heads[best]])
		s.heads[best]++
	}
	return due, s.ids, true
}
