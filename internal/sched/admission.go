package sched

import (
	"fmt"
	"sync"

	"avdb/internal/media"
	"avdb/internal/obs"
)

// Resources is a bundle of the finite system resources §3.3 names:
// buffers, processor cycles and bus bandwidth.  Processor capacity is
// expressed as a data-processing rate (bytes/s the CPU can move through
// activity code), which is the unit everything else budgets in.
type Resources struct {
	Buffers int
	CPU     media.DataRate
	Bus     media.DataRate
}

// Add returns r + o componentwise.
func (r Resources) Add(o Resources) Resources {
	return Resources{r.Buffers + o.Buffers, r.CPU + o.CPU, r.Bus + o.Bus}
}

// Sub returns r - o componentwise.
func (r Resources) Sub(o Resources) Resources {
	return Resources{r.Buffers - o.Buffers, r.CPU - o.CPU, r.Bus - o.Bus}
}

// Fits reports whether r fits inside budget in every component.
func (r Resources) Fits(budget Resources) bool {
	return r.Buffers <= budget.Buffers && r.CPU <= budget.CPU && r.Bus <= budget.Bus
}

// IsZero reports whether no resources are requested.
func (r Resources) IsZero() bool { return r == Resources{} }

// nonNegative reports whether every component is >= 0.
func (r Resources) nonNegative() bool {
	return r.Buffers >= 0 && r.CPU >= 0 && r.Bus >= 0
}

// String formats the bundle.
func (r Resources) String() string {
	return fmt.Sprintf("{buffers:%d cpu:%v bus:%v}", r.Buffers, r.CPU, r.Bus)
}

// ErrAdmission is wrapped by reservation failures.
var ErrAdmission = fmt.Errorf("sched: insufficient resources")

// Grant lifecycle sentinels: misuse of a grant is reported with a
// wrapped sentinel so policy code (the engine's restore sweep, a
// client's degradation handler) can distinguish "the grant is gone" —
// not worth retrying — from a transient capacity failure.
var (
	// ErrGrantReleased is wrapped by Shrink or Grow on a released grant.
	ErrGrantReleased = fmt.Errorf("sched: grant released")
	// ErrGrantGrow is wrapped by a Shrink whose target exceeds the
	// grant: shrinking is strictly downward, growing goes through Grow
	// so the delta is re-admitted against the budget.
	ErrGrantGrow = fmt.Errorf("sched: shrink cannot grow a grant")
)

// Admission is the database's resource pre-allocation authority.  Clients
// reserve resources before starting activities; a request that does not
// fit alongside existing grants fails immediately, which is the paper's
// "in requesting a video source the application is allocating resources
// within the database system.  If insufficient resources were available
// this statement would fail."
type Admission struct {
	mu    sync.Mutex
	total Resources
	used  Resources
	sink  obs.Sink
}

// NewAdmission returns an admission controller with the given budget.  A
// budget with a negative component is a configuration error, reported
// rather than panicked so that callers can surface it to their clients.
func NewAdmission(total Resources) (*Admission, error) {
	if !total.nonNegative() {
		return nil, fmt.Errorf("sched: negative admission budget %v", total)
	}
	return &Admission{total: total}, nil
}

// SetSink installs an observability sink.  The admission counters
// (admission.reserve / admission.reject / admission.release) and the
// utilization gauges (admission.used_* / admission.total_*) flow to it.
func (a *Admission) SetSink(s obs.Sink) {
	a.mu.Lock()
	a.sink = s
	if s != nil {
		s.SetGauge("admission.total_buffers", int64(a.total.Buffers))
		s.SetGauge("admission.total_cpu", int64(a.total.CPU))
		s.SetGauge("admission.total_bus", int64(a.total.Bus))
		a.publishUsedLocked()
	}
	a.mu.Unlock()
}

// publishUsedLocked pushes the utilization gauges; callers hold a.mu.
func (a *Admission) publishUsedLocked() {
	if a.sink == nil {
		return
	}
	a.sink.SetGauge("admission.used_buffers", int64(a.used.Buffers))
	a.sink.SetGauge("admission.used_cpu", int64(a.used.CPU))
	a.sink.SetGauge("admission.used_bus", int64(a.used.Bus))
}

// Total reports the full budget.
func (a *Admission) Total() Resources {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// Used reports the currently granted resources.
func (a *Admission) Used() Resources {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used
}

// Free reports the remaining budget.
func (a *Admission) Free() Resources {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total.Sub(a.used)
}

// Reserve grants r, failing if it does not fit the remaining budget.
// The returned grant releases exactly once.
func (a *Admission) Reserve(r Resources) (*Grant, error) {
	if !r.nonNegative() {
		return nil, fmt.Errorf("sched: negative reservation %v", r)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.used.Add(r).Fits(a.total) {
		if a.sink != nil {
			a.sink.Count("admission.reject", 1)
		}
		return nil, fmt.Errorf("%w: %v requested, %v of %v free", ErrAdmission, r, a.total.Sub(a.used), a.total)
	}
	a.used = a.used.Add(r)
	if a.sink != nil {
		a.sink.Count("admission.reserve", 1)
		a.publishUsedLocked()
	}
	return &Grant{a: a, r: r}, nil
}

// ReserveStriped grants the bundle for a stream striped over width
// devices.  The client still consumes one stream's worth of bus and CPU,
// but buffering scales with the stripe: each participating disk needs
// its own staging buffer to overlap its share of a service round with
// the others.  The returned grant records the width and holds the
// scaled bundle, so releasing or shrinking it settles all width shares
// at once.
func (a *Admission) ReserveStriped(r Resources, width int) (*Grant, error) {
	if width < 1 {
		return nil, fmt.Errorf("sched: stripe width must be >= 1, got %d", width)
	}
	scaled := r
	scaled.Buffers = r.Buffers * width
	g, err := a.Reserve(scaled)
	if err != nil {
		return nil, err
	}
	g.width = width
	a.mu.Lock()
	if a.sink != nil {
		a.sink.Count("admission.reserve_striped", 1)
	}
	a.mu.Unlock()
	return g, nil
}

// Grant is an outstanding resource reservation.
type Grant struct {
	mu       sync.Mutex
	a        *Admission
	r        Resources
	width    int // stripe width for striped reservations, else 0
	released bool
}

// Width reports the stripe width of a striped reservation, or 0 for a
// plain one.
func (g *Grant) Width() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.width
}

// Resources reports what the grant holds.
func (g *Grant) Resources() Resources {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r
}

// Shrink reduces the grant to the smaller bundle, returning the freed
// resources to the admission budget.  This is the re-reservation a
// degradation policy performs when a stream renegotiates to a lower
// quality: the smaller grant always fits, so shrinking cannot fail for
// capacity reasons.  Growing a grant (wrapped ErrGrantGrow), or
// shrinking a released one (wrapped ErrGrantReleased), is an error
// that leaves the grant untouched.
func (g *Grant) Shrink(to Resources) error {
	if !to.nonNegative() {
		return fmt.Errorf("sched: negative shrink target %v", to)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.released {
		return fmt.Errorf("%w: shrink to %v", ErrGrantReleased, to)
	}
	if !to.Fits(g.r) {
		return fmt.Errorf("%w: target %v exceeds grant %v", ErrGrantGrow, to, g.r)
	}
	freed := g.r.Sub(to)
	g.r = to
	g.a.mu.Lock()
	g.a.used = g.a.used.Sub(freed)
	if g.a.sink != nil {
		g.a.sink.Count("admission.shrink", 1)
		g.a.publishUsedLocked()
	}
	g.a.mu.Unlock()
	return nil
}

// Grow raises the grant back toward a larger bundle — the restore half
// of a degradation cycle.  Unlike Shrink, growing competes for the
// budget again: the delta must fit the controller's free resources or
// the call fails with a wrapped ErrAdmission and the grant is
// unchanged, in which case the stream simply stays degraded.  A target
// the grant already covers is a no-op.  Growing a released grant fails
// with a wrapped ErrGrantReleased.
func (g *Grant) Grow(to Resources) error {
	if !to.nonNegative() {
		return fmt.Errorf("sched: negative grow target %v", to)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.released {
		return fmt.Errorf("%w: grow to %v", ErrGrantReleased, to)
	}
	if to.Fits(g.r) {
		return nil
	}
	// Clamp componentwise so a mixed target (some components below the
	// grant) only ever adds, never silently shrinks.
	target := to
	if target.Buffers < g.r.Buffers {
		target.Buffers = g.r.Buffers
	}
	if target.CPU < g.r.CPU {
		target.CPU = g.r.CPU
	}
	if target.Bus < g.r.Bus {
		target.Bus = g.r.Bus
	}
	delta := target.Sub(g.r)
	g.a.mu.Lock()
	if !g.a.used.Add(delta).Fits(g.a.total) {
		free := g.a.total.Sub(g.a.used)
		if g.a.sink != nil {
			g.a.sink.Count("admission.reject", 1)
		}
		g.a.mu.Unlock()
		return fmt.Errorf("%w: grow needs %v, %v free", ErrAdmission, delta, free)
	}
	g.a.used = g.a.used.Add(delta)
	if g.a.sink != nil {
		g.a.sink.Count("admission.grow", 1)
		g.a.publishUsedLocked()
	}
	g.a.mu.Unlock()
	g.r = target
	return nil
}

// Release returns the grant's resources.  Releasing twice is a no-op.
func (g *Grant) Release() {
	g.mu.Lock()
	if g.released {
		g.mu.Unlock()
		return
	}
	g.released = true
	r := g.r
	g.mu.Unlock()
	g.a.mu.Lock()
	g.a.used = g.a.used.Sub(r)
	if g.a.sink != nil {
		g.a.sink.Count("admission.release", 1)
		g.a.publishUsedLocked()
	}
	g.a.mu.Unlock()
}
