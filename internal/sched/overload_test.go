package sched

import (
	"testing"

	"avdb/internal/avtime"
)

// feedWindow pushes one full window of identical steps and returns the
// boundary evaluation.
func feedWindow(t *testing.T, d *OverloadDetector, served, missed, overruns, stalls int64) (PressureLevel, bool) {
	t.Helper()
	w := d.Policy().Window
	for i := 0; i < w-1; i++ {
		if _, evaluated, _ := d.ObserveStep(served, missed, overruns, stalls); evaluated {
			t.Fatalf("window boundary fired early at step %d of %d", i+1, w)
		}
	}
	level, evaluated, changed := d.ObserveStep(served, missed, overruns, stalls)
	if !evaluated {
		t.Fatalf("window boundary did not fire at step %d", w)
	}
	return level, changed
}

func TestOverloadDetectorEscalatesImmediately(t *testing.T) {
	d := NewOverloadDetector(OverloadPolicy{})
	if got := d.Level(); got != PressureNormal {
		t.Fatalf("initial level = %v, want normal", got)
	}
	// One window at a 1/3 miss rate jumps straight to overloaded.
	level, changed := feedWindow(t, d, 6, 2, 1, 0)
	if level != PressureOverloaded || !changed {
		t.Fatalf("after thrashing window: level=%v changed=%v, want overloaded/true", level, changed)
	}
	if d.Transitions() != 1 {
		t.Fatalf("transitions = %d, want 1", d.Transitions())
	}
}

func TestOverloadDetectorPressureSignals(t *testing.T) {
	// Each of the three signals alone must raise pressure.
	cases := []struct {
		name                             string
		served, missed, overruns, stalls int64
	}{
		{"miss-rate", 20, 2, 0, 0}, // 10% >= 5% threshold
		{"overrun", 20, 0, 1, 0},
		{"stall", 20, 0, 0, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := NewOverloadDetector(OverloadPolicy{})
			level, _ := feedWindow(t, d, tc.served, tc.missed, tc.overruns, tc.stalls)
			if level != PressurePressured {
				t.Fatalf("level = %v, want pressured", level)
			}
		})
	}
}

func TestOverloadDetectorHysteresis(t *testing.T) {
	d := NewOverloadDetector(OverloadPolicy{ClearWindows: 2})
	feedWindow(t, d, 6, 2, 0, 0) // -> overloaded
	if d.Level() != PressureOverloaded {
		t.Fatalf("level = %v, want overloaded", d.Level())
	}
	// One clean window is not enough to step down.
	if level, changed := feedWindow(t, d, 6, 0, 0, 0); level != PressureOverloaded || changed {
		t.Fatalf("after 1 clean window: level=%v changed=%v, want overloaded/false", level, changed)
	}
	// The second clean window steps down exactly one level.
	if level, changed := feedWindow(t, d, 6, 0, 0, 0); level != PressurePressured || !changed {
		t.Fatalf("after 2 clean windows: level=%v changed=%v, want pressured/true", level, changed)
	}
	// A dirty window resets the de-escalation count.
	feedWindow(t, d, 6, 1, 0, 0) // 16% — pressured, matches current level
	feedWindow(t, d, 6, 0, 0, 0)
	if level, _ := feedWindow(t, d, 6, 0, 0, 0); level != PressureNormal {
		t.Fatalf("after 2 clean windows from pressured: level=%v, want normal", level)
	}
	if got := d.Transitions(); got != 3 {
		t.Fatalf("transitions = %d, want 3", got)
	}
}

func TestOverloadDetectorIdleWindowsAreClean(t *testing.T) {
	// Served == 0 must not divide by zero and classifies normal.
	d := NewOverloadDetector(OverloadPolicy{ClearWindows: 1})
	feedWindow(t, d, 4, 4, 0, 0)
	if d.Level() != PressureOverloaded {
		t.Fatalf("level = %v, want overloaded", d.Level())
	}
	feedWindow(t, d, 0, 0, 0, 0)
	feedWindow(t, d, 0, 0, 0, 0)
	if d.Level() != PressureNormal {
		t.Fatalf("idle windows did not clear pressure: %v", d.Level())
	}
}

func TestOverloadPolicyDefaults(t *testing.T) {
	p := OverloadPolicy{}.withDefaults()
	if p.Window != 6 || p.PressureMiss != 0.05 || p.OverloadMiss != 0.25 ||
		p.ClearWindows != 2 || p.RetryAfter != avtime.Second {
		t.Fatalf("unexpected defaults: %+v", p)
	}
}

func TestPressureLevelAndPriorityStrings(t *testing.T) {
	if PressureNormal.String() != "normal" || PressurePressured.String() != "pressured" ||
		PressureOverloaded.String() != "overloaded" {
		t.Fatal("pressure level strings drifted")
	}
	if PriorityLow.String() != "low" || PriorityNormal.String() != "normal" ||
		PriorityHigh.String() != "high" {
		t.Fatal("priority strings drifted")
	}
	var zero Priority
	if zero != PriorityNormal {
		t.Fatal("zero Priority must be PriorityNormal")
	}
}
