package sched

import (
	"math/rand"
	"reflect"
	"testing"

	"avdb/internal/avtime"
)

// linearRunSet is the original O(n)-per-step admission book the heap
// replaced: a slice in admission order, min-next-due found by scanning.
// It is kept here as the executable specification the heap must match
// batch for batch.
type linearRunSet struct {
	next    RunID
	entries []runSetEntry
}

func (s *linearRunSet) Admit(due avtime.WorldTime) RunID {
	s.next++
	s.entries = append(s.entries, runSetEntry{id: s.next, due: due})
	return s.next
}

func (s *linearRunSet) Reschedule(id RunID, due avtime.WorldTime) {
	for i := range s.entries {
		if s.entries[i].id == id {
			s.entries[i].due = due
			return
		}
	}
}

func (s *linearRunSet) Remove(id RunID) {
	for i := range s.entries {
		if s.entries[i].id == id {
			s.entries = append(s.entries[:i], s.entries[i+1:]...)
			return
		}
	}
}

func (s *linearRunSet) DueBatch() (due avtime.WorldTime, ids []RunID, ok bool) {
	if len(s.entries) == 0 {
		return 0, nil, false
	}
	due = s.entries[0].due
	for _, e := range s.entries[1:] {
		if e.due < due {
			due = e.due
		}
	}
	for _, e := range s.entries {
		if e.due == due {
			ids = append(ids, e.id)
		}
	}
	return due, ids, true
}

// TestRunSetHeapMatchesLinearScan drives the heap and the linear
// specification through the same randomized admission history —
// admits, reschedules, removes, and the engine's pop-batch step — and
// requires identical due times and identical batch order at every
// step.  Due times are drawn from a tiny range so multi-run ties (the
// interesting case for admission-order tie-breaking) are common.
func TestRunSetHeapMatchesLinearScan(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1993} {
		rng := rand.New(rand.NewSource(seed))
		var heap RunSet
		var linear linearRunSet
		var live []RunID

		check := func(step int) {
			hd, hids, hok := heap.DueBatch()
			ld, lids, lok := linear.DueBatch()
			if hok != lok || hd != ld || !reflect.DeepEqual(hids, lids) {
				t.Fatalf("seed %d step %d: heap batch (%v,%v,%v) != linear (%v,%v,%v)",
					seed, step, hd, hids, hok, ld, lids, lok)
			}
			if heap.Len() != len(linear.entries) {
				t.Fatalf("seed %d step %d: Len %d != %d", seed, step, heap.Len(), len(linear.entries))
			}
		}

		due := func() avtime.WorldTime {
			return avtime.WorldTime(rng.Intn(8)) * 10 * avtime.Millisecond
		}
		for step := 0; step < 2000; step++ {
			switch op := rng.Intn(10); {
			case op < 4 || len(live) == 0: // admit
				d := due()
				hid := heap.Admit(d)
				lid := linear.Admit(d)
				if hid != lid {
					t.Fatalf("seed %d step %d: Admit ids diverge: %v != %v", seed, step, hid, lid)
				}
				live = append(live, hid)
			case op < 6: // reschedule a random live run
				id := live[rng.Intn(len(live))]
				d := due()
				heap.Reschedule(id, d)
				linear.Reschedule(id, d)
			case op < 7: // remove a random live run
				i := rng.Intn(len(live))
				id := live[i]
				heap.Remove(id)
				linear.Remove(id)
				live = append(live[:i], live[i+1:]...)
			default: // the engine's step: pop the due batch, reschedule each
				_, ids, ok := heap.DueBatch()
				if ok {
					for _, id := range ids {
						d := due()
						heap.Reschedule(id, d)
						linear.Reschedule(id, d)
					}
				}
			}
			check(step)
		}
	}
}
