package sched

import (
	"sync"

	"avdb/internal/avtime"
)

// Resync is the resynchronization controller a composite activity uses to
// keep its component streams temporally correlated.  Each track reports
// the latency of every delivery; the controller maintains an exponential
// moving estimate per track and prescribes a per-track delay (correction)
// that lines all tracks up on the slowest one.  "Such a composite would
// maintain the synchronization of its component activities, assuring that
// the streams corresponding to the different tracks remain temporally
// correlated" (§4.2).
type Resync struct {
	alpha float64 // smoothing factor in (0, 1]

	mu  sync.Mutex
	est map[string]float64 // track -> smoothed latency in µs
}

// NewResync returns a controller with the given smoothing factor; alpha 1
// tracks the last observation only, small alphas smooth heavily.
func NewResync(alpha float64) *Resync {
	if alpha <= 0 || alpha > 1 {
		panic("sched: resync alpha must be in (0, 1]")
	}
	return &Resync{alpha: alpha, est: make(map[string]float64)}
}

// Observe feeds one delivery latency for a track.
func (r *Resync) Observe(track string, latency avtime.WorldTime) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.est[track]; ok {
		r.est[track] = prev + r.alpha*(float64(latency)-prev)
	} else {
		r.est[track] = float64(latency)
	}
}

// Correction reports the delay a track should add so that it aligns with
// the slowest track seen so far.  Unknown tracks get zero.
func (r *Resync) Correction(track string) avtime.WorldTime {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.est[track]
	if !ok {
		return 0
	}
	var maxEst float64
	for _, v := range r.est {
		if v > maxEst {
			maxEst = v
		}
	}
	c := avtime.WorldTime(maxEst - e)
	if c < 0 {
		return 0
	}
	return c
}

// Tracks reports how many tracks the controller has observed.
func (r *Resync) Tracks() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.est)
}

// Skew reports the spread (max - min) of a set of per-track arrival
// times; zero for fewer than two tracks.
func Skew(arrivals map[string]avtime.WorldTime) avtime.WorldTime {
	if len(arrivals) < 2 {
		return 0
	}
	first := true
	var lo, hi avtime.WorldTime
	for _, a := range arrivals {
		if first {
			lo, hi = a, a
			first = false
			continue
		}
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	return hi - lo
}
