package sched

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"avdb/internal/media"
	"avdb/internal/obs"
)

// TestAdmissionConcurrentNeverOvercommits hammers Reserve/Shrink/Release
// from many goroutines and checks the two safety invariants at every
// observable point: the controller never grants past its budget, and
// accounting always balances (Free + Used == Total componentwise).
// Run with -race; the test is also a determinism-independent stress of
// the sink path, so half the workers publish through a collector.
func TestAdmissionConcurrentNeverOvercommits(t *testing.T) {
	total := Resources{Buffers: 64, CPU: 64 * media.MBPerSecond, Bus: 64 * media.MBPerSecond}
	a, err := NewAdmission(total)
	if err != nil {
		t.Fatal(err)
	}
	a.SetSink(obs.NewCollector())

	check := func() {
		used, free := a.Used(), a.Free()
		// used and free are read in two steps, so each must individually
		// respect the budget even if the other moved in between.
		if !used.Fits(total) {
			t.Errorf("over-commit: used %v exceeds total %v", used, total)
		}
		if !free.Fits(total) || !free.nonNegative() {
			t.Errorf("free %v escapes budget %v", free, total)
		}
	}

	const workers = 8
	const rounds = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < rounds; i++ {
				req := Resources{
					Buffers: 1 + r.Intn(16),
					CPU:     media.DataRate(1+r.Intn(16)) * media.MBPerSecond,
					Bus:     media.DataRate(1+r.Intn(16)) * media.MBPerSecond,
				}
				g, err := a.Reserve(req)
				if err != nil {
					if !errors.Is(err, ErrAdmission) {
						t.Errorf("unexpected reserve error: %v", err)
					}
					check()
					continue
				}
				check()
				if r.Intn(2) == 0 {
					half := Resources{Buffers: req.Buffers / 2, CPU: req.CPU / 2, Bus: req.Bus / 2}
					if err := g.Shrink(half); err != nil {
						t.Errorf("shrink to %v of %v failed: %v", half, req, err)
					}
					check()
				}
				g.Release()
				g.Release() // second release must be a no-op
				check()
			}
		}(int64(w) + 1)
	}
	wg.Wait()

	// All grants released: the pool must drain back to empty exactly.
	if used := a.Used(); !used.IsZero() {
		t.Errorf("resources leaked: used %v after all releases", used)
	}
	if free := a.Free(); free != total {
		t.Errorf("free %v != total %v after all releases", free, total)
	}
}

// TestAdmissionAccountingBalancesUnderRacingReleases interleaves a
// snapshotting reader with racing grant releases; with releases being
// the only mutation in flight, Used must equal the sum of what is still
// outstanding once the dust settles, i.e. zero.
func TestAdmissionAccountingBalancesUnderRacingReleases(t *testing.T) {
	total := Resources{Buffers: 1024, CPU: media.GBPerSecond, Bus: media.GBPerSecond}
	a, err := NewAdmission(total)
	if err != nil {
		t.Fatal(err)
	}
	var grants []*Grant
	for i := 0; i < 256; i++ {
		g, err := a.Reserve(Resources{Buffers: 4, CPU: 2 * media.MBPerSecond, Bus: media.MBPerSecond})
		if err != nil {
			t.Fatal(err)
		}
		grants = append(grants, g)
	}
	var wg sync.WaitGroup
	for _, g := range grants {
		wg.Add(1)
		go func(g *Grant) {
			defer wg.Done()
			g.Release()
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			if used := a.Used(); !used.nonNegative() {
				t.Errorf("used went negative: %v", used)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if used := a.Used(); !used.IsZero() {
		t.Errorf("used %v after releasing every grant", used)
	}
}
