package sched

import (
	"fmt"
	"sync"

	"avdb/internal/avtime"
)

// overload.go implements the engine's pressure detector: the signal an
// overload-control policy acts on.  §3.3's resource contract ("if
// insufficient resources were available this statement would fail") is
// enforced at admission time; the detector closes the loop at run time,
// when an optimistic admission or a degraded device makes the granted
// schedule infeasible.  Rather than letting every co-scheduled session
// thrash, the engine watches three load signals per step — deadline
// misses at the disks, SCAN-EDF rounds running past their last
// deadline, and sink-side stall episodes — and classifies the system
// into one of three pressure levels with hysteresis, so the response
// (degrade, shed, restore) never flaps on a single noisy window.

// PressureLevel is the detector's classification of engine load.
type PressureLevel int

const (
	// PressureNormal: the admitted schedule is feasible; restores may
	// proceed.
	PressureNormal PressureLevel = iota
	// PressurePressured: sustained misses or round overruns; the engine
	// degrades low-priority sessions one per window.
	PressurePressured
	// PressureOverloaded: the miss rate says the schedule is infeasible;
	// the engine degrades a whole priority class and sheds new starts.
	PressureOverloaded
)

// String renders the level for status displays.
func (l PressureLevel) String() string {
	switch l {
	case PressureNormal:
		return "normal"
	case PressurePressured:
		return "pressured"
	case PressureOverloaded:
		return "overloaded"
	default:
		return fmt.Sprintf("PressureLevel(%d)", int(l))
	}
}

// OverloadPolicy parameterizes the detector.  The zero value of any
// field selects its default.
type OverloadPolicy struct {
	// Window is how many engine steps accumulate before the level is
	// re-evaluated.  Default 6.
	Window int
	// PressureMiss and OverloadMiss are the deadline-miss fractions
	// (missed / serviced requests over one window) at which the raw
	// classification becomes Pressured and Overloaded.  Defaults 0.05
	// and 0.25.
	PressureMiss float64
	OverloadMiss float64
	// ClearWindows is how many consecutive windows must classify below
	// the current level before the detector steps down one level.
	// Escalation is immediate; de-escalation is damped.  Default 2.
	ClearWindows int
	// RetryAfter is the virtual-time hint attached to shed admissions:
	// how long a rejected client should wait before retrying.  Default
	// one second.
	RetryAfter avtime.WorldTime
}

// withDefaults fills zero fields.
func (p OverloadPolicy) withDefaults() OverloadPolicy {
	if p.Window <= 0 {
		p.Window = 6
	}
	if p.PressureMiss <= 0 {
		p.PressureMiss = 0.05
	}
	if p.OverloadMiss <= 0 {
		p.OverloadMiss = 0.25
	}
	if p.ClearWindows <= 0 {
		p.ClearWindows = 2
	}
	if p.RetryAfter <= 0 {
		p.RetryAfter = avtime.Second
	}
	return p
}

// OverloadDetector accumulates per-step load signals into fixed-size
// windows and runs the hysteresis state machine over them.  It is
// goroutine-safe: the engine feeds it from the run loop while clients
// query Level from anywhere.
type OverloadDetector struct {
	mu     sync.Mutex
	policy OverloadPolicy

	// current window accumulators
	steps    int
	served   int64
	missed   int64
	overruns int64
	stalls   int64

	level       PressureLevel
	clean       int  // consecutive windows classifying below level
	dirty       bool // last evaluated window classified >= Pressured on its own
	windows     int64
	transitions int64
}

// NewOverloadDetector returns a detector with the given policy (zero
// fields defaulted).
func NewOverloadDetector(p OverloadPolicy) *OverloadDetector {
	return &OverloadDetector{policy: p.withDefaults()}
}

// Policy reports the effective (defaulted) policy.
func (d *OverloadDetector) Policy() OverloadPolicy {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.policy
}

// Level reports the current pressure level.
func (d *OverloadDetector) Level() PressureLevel {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.level
}

// Transitions reports how many level changes have occurred.
func (d *OverloadDetector) Transitions() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.transitions
}

// Windows reports how many windows have been evaluated.
func (d *OverloadDetector) Windows() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.windows
}

// WindowDirty reports whether the most recently evaluated window
// classified Pressured or worse on its own accumulators.  The engine
// sweeps new victims only on dirty windows: while an elevated level is
// decaying through clean windows, punishing further sessions would
// degrade capacity that is no longer needed.
func (d *OverloadDetector) WindowDirty() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dirty
}

// ObserveStep feeds one engine step's load deltas: requests the disks
// serviced, requests that missed their deadline, service rounds that
// ran past their last deadline, and stall episodes that began.  At each
// window boundary the level is re-evaluated; evaluated reports that a
// boundary was crossed (the engine runs its sweep then) and changed
// that the level moved.
func (d *OverloadDetector) ObserveStep(served, missed, overruns, stalls int64) (level PressureLevel, evaluated, changed bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.steps++
	d.served += served
	d.missed += missed
	d.overruns += overruns
	d.stalls += stalls
	if d.steps < d.policy.Window {
		return d.level, false, false
	}

	// Window boundary: classify the raw level from the accumulators.
	raw := PressureNormal
	var frac float64
	if d.served > 0 {
		frac = float64(d.missed) / float64(d.served)
	}
	switch {
	case frac >= d.policy.OverloadMiss:
		raw = PressureOverloaded
	case frac >= d.policy.PressureMiss || d.overruns > 0 || d.stalls > 0:
		raw = PressurePressured
	}
	d.steps, d.served, d.missed, d.overruns, d.stalls = 0, 0, 0, 0, 0
	d.windows++
	d.dirty = raw >= PressurePressured

	prev := d.level
	switch {
	case raw > d.level:
		// Escalate immediately: overload is the state we must not sit in.
		d.level = raw
		d.clean = 0
	case raw < d.level:
		// De-escalate only after ClearWindows consecutive cleaner
		// windows, so one quiet window under a bursty load does not
		// trigger a premature restore.
		d.clean++
		if d.clean >= d.policy.ClearWindows {
			d.level--
			d.clean = 0
		}
	default:
		d.clean = 0
	}
	if d.level != prev {
		d.transitions++
	}
	return d.level, true, d.level != prev
}

// Priority is a session's service class: the order in which the engine
// chooses victims for degradation sweeps and, symmetrically, the order
// restores are owed.  Higher is more important.  The zero value is
// PriorityNormal, so sessions that never set one behave as before.
type Priority int

const (
	PriorityLow    Priority = -1
	PriorityNormal Priority = 0
	PriorityHigh   Priority = 1
)

// String renders the priority for status displays.
func (p Priority) String() string {
	switch p {
	case PriorityLow:
		return "low"
	case PriorityNormal:
		return "normal"
	case PriorityHigh:
		return "high"
	default:
		return fmt.Sprintf("Priority(%d)", int(p))
	}
}
