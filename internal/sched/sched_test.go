package sched

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"avdb/internal/avtime"
	"avdb/internal/media"
)

func TestVirtualClock(t *testing.T) {
	c := NewVirtualClock(avtime.Second)
	if c.Now() != avtime.Second {
		t.Error("start time wrong")
	}
	c.Advance(500 * avtime.Millisecond)
	if c.Now() != 1500*avtime.Millisecond {
		t.Error("Advance wrong")
	}
	c.AdvanceTo(3 * avtime.Second)
	if c.Now() != 3*avtime.Second {
		t.Error("AdvanceTo wrong")
	}
	c.AdvanceTo(avtime.Second) // earlier: ignored
	if c.Now() != 3*avtime.Second {
		t.Error("AdvanceTo moved backward")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("backward Advance did not panic")
			}
		}()
		c.Advance(-1)
	}()
	var zero VirtualClock
	if zero.Now() != 0 {
		t.Error("zero clock not at zero")
	}
}

func TestResourcesArithmetic(t *testing.T) {
	a := Resources{Buffers: 2, CPU: 10, Bus: 20}
	b := Resources{Buffers: 1, CPU: 5, Bus: 5}
	if got := a.Add(b); got != (Resources{3, 15, 25}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Resources{1, 5, 15}) {
		t.Errorf("Sub = %v", got)
	}
	if !b.Fits(a) || a.Fits(b) {
		t.Error("Fits misordered")
	}
	if !(Resources{}).IsZero() || a.IsZero() {
		t.Error("IsZero wrong")
	}
	if a.String() == "" {
		t.Error("empty String")
	}
}

func TestAdmissionReserveRelease(t *testing.T) {
	adm := mustAdmission(t, Resources{Buffers: 10, CPU: 100 * media.MBPerSecond, Bus: 200 * media.MBPerSecond})
	g1, err := adm.Reserve(Resources{Buffers: 6, CPU: 60 * media.MBPerSecond, Bus: 50 * media.MBPerSecond})
	if err != nil {
		t.Fatal(err)
	}
	// A second reservation exceeding any single component fails.
	if _, err := adm.Reserve(Resources{Buffers: 5}); !errors.Is(err, ErrAdmission) {
		t.Errorf("buffer over-reservation error = %v", err)
	}
	if _, err := adm.Reserve(Resources{CPU: 50 * media.MBPerSecond}); !errors.Is(err, ErrAdmission) {
		t.Errorf("CPU over-reservation error = %v", err)
	}
	if free := adm.Free(); free.Buffers != 4 {
		t.Errorf("Free = %v", free)
	}
	if used := adm.Used(); used.Buffers != 6 {
		t.Errorf("Used = %v", used)
	}
	g1.Release()
	g1.Release() // idempotent
	if !adm.Used().IsZero() {
		t.Error("release did not return resources")
	}
	if _, err := adm.Reserve(Resources{Buffers: -1}); err == nil {
		t.Error("negative reservation accepted")
	}
	if g1.Resources().Buffers != 6 {
		t.Error("grant resources wrong")
	}
	if adm.Total().Buffers != 10 {
		t.Error("Total wrong")
	}
}

func TestAdmissionConcurrent(t *testing.T) {
	adm := mustAdmission(t, Resources{Buffers: 100})
	var wg sync.WaitGroup
	grants := make(chan *Grant, 300)
	for i := 0; i < 300; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if g, err := adm.Reserve(Resources{Buffers: 1}); err == nil {
				grants <- g
			}
		}()
	}
	wg.Wait()
	close(grants)
	var n int
	for g := range grants {
		n++
		g.Release()
	}
	if n != 100 {
		t.Errorf("granted %d of budget 100", n)
	}
	if !adm.Used().IsZero() {
		t.Error("leaked grants")
	}
}

func TestAdmissionInvariantProperty(t *testing.T) {
	adm := mustAdmission(t, Resources{Buffers: 50, CPU: 1000, Bus: 1000})
	f := func(reqs []uint8) bool {
		var grants []*Grant
		for _, r := range reqs {
			g, err := adm.Reserve(Resources{Buffers: int(r % 20), CPU: media.DataRate(r), Bus: media.DataRate(r) * 2})
			if err == nil {
				grants = append(grants, g)
			}
			u := adm.Used()
			if !u.Fits(adm.Total()) || !u.nonNegative() {
				return false
			}
		}
		for _, g := range grants {
			g.Release()
		}
		return adm.Used().IsZero()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLatencySample(t *testing.T) {
	l := NewLatency(10*avtime.Millisecond, 0, 1)
	for i := 0; i < 10; i++ {
		if got := l.Sample(); got != 10*avtime.Millisecond {
			t.Fatalf("jitterless sample = %v", got)
		}
	}
	j := NewLatency(5*avtime.Millisecond, 3*avtime.Millisecond, 7)
	for i := 0; i < 1000; i++ {
		s := j.Sample()
		if s < 5*avtime.Millisecond || s > 8*avtime.Millisecond {
			t.Fatalf("sample %v outside [5ms, 8ms]", s)
		}
	}
	// Determinism: same seed, same sequence.
	a, b := NewLatency(0, avtime.Second, 42), NewLatency(0, avtime.Second, 42)
	for i := 0; i < 100; i++ {
		if a.Sample() != b.Sample() {
			t.Fatal("latency not deterministic")
		}
	}
	if j.Base() != 5*avtime.Millisecond || j.MaxJitter() != 3*avtime.Millisecond {
		t.Error("metadata wrong")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative latency did not panic")
			}
		}()
		NewLatency(-1, 0, 0)
	}()
}

func TestMonitor(t *testing.T) {
	m := NewMonitor(10 * avtime.Millisecond)
	m.Record(0, 5*avtime.Millisecond)                                // on time
	m.Record(avtime.Second, avtime.Second)                           // exact
	m.Record(2*avtime.Second, 2*avtime.Second+20*avtime.Millisecond) // miss
	m.Record(3*avtime.Second, 2*avtime.Second)                       // early counts as on-time
	if m.Count() != 4 || m.Misses() != 1 {
		t.Errorf("count=%d misses=%d", m.Count(), m.Misses())
	}
	if m.MissRate() != 0.25 {
		t.Errorf("MissRate = %v", m.MissRate())
	}
	if m.MaxLateness() != 20*avtime.Millisecond {
		t.Errorf("MaxLateness = %v", m.MaxLateness())
	}
	if m.MeanLateness() != 25*avtime.Millisecond/4 {
		t.Errorf("MeanLateness = %v", m.MeanLateness())
	}
	if m.String() == "" {
		t.Error("empty String")
	}
	empty := NewMonitor(0)
	if empty.MissRate() != 0 || empty.MeanLateness() != 0 {
		t.Error("empty monitor stats wrong")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative tolerance did not panic")
			}
		}()
		NewMonitor(-1)
	}()
}

func TestResyncConvergesCorrections(t *testing.T) {
	r := NewResync(0.5)
	// Video is consistently slow (20ms), audio fast (5ms).
	for i := 0; i < 50; i++ {
		r.Observe("video", 20*avtime.Millisecond)
		r.Observe("audio", 5*avtime.Millisecond)
	}
	if got := r.Correction("video"); got != 0 {
		t.Errorf("slowest track correction = %v, want 0", got)
	}
	c := r.Correction("audio")
	if c < 14*avtime.Millisecond || c > 16*avtime.Millisecond {
		t.Errorf("audio correction = %v, want ~15ms", c)
	}
	if r.Correction("unknown") != 0 {
		t.Error("unknown track corrected")
	}
	if r.Tracks() != 2 {
		t.Errorf("Tracks = %d", r.Tracks())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad alpha did not panic")
			}
		}()
		NewResync(0)
	}()
}

func TestResyncReducesSkew(t *testing.T) {
	// Simulated playback: per-tick latencies with different means; the
	// correction should cut the steady-state skew.
	r := NewResync(0.3)
	video := NewLatency(18*avtime.Millisecond, 4*avtime.Millisecond, 11)
	audio := NewLatency(3*avtime.Millisecond, 2*avtime.Millisecond, 13)
	var rawWorst, corrWorst avtime.WorldTime
	for tick := 0; tick < 200; tick++ {
		lv, la := video.Sample(), audio.Sample()
		raw := Skew(map[string]avtime.WorldTime{"v": lv, "a": la})
		if raw > rawWorst {
			rawWorst = raw
		}
		// Warm the controller before judging corrected skew.
		if tick > 20 {
			corr := Skew(map[string]avtime.WorldTime{
				"v": lv + r.Correction("video"),
				"a": la + r.Correction("audio"),
			})
			if corr > corrWorst {
				corrWorst = corr
			}
		}
		r.Observe("video", lv)
		r.Observe("audio", la)
	}
	if corrWorst >= rawWorst/2 {
		t.Errorf("correction did not help: raw worst %v, corrected worst %v", rawWorst, corrWorst)
	}
}

func TestSkew(t *testing.T) {
	if Skew(nil) != 0 {
		t.Error("nil skew not zero")
	}
	if Skew(map[string]avtime.WorldTime{"a": 5}) != 0 {
		t.Error("single-track skew not zero")
	}
	got := Skew(map[string]avtime.WorldTime{"a": 5, "b": 12, "c": 8})
	if got != 7 {
		t.Errorf("Skew = %v, want 7", got)
	}
}

// mustAdmission builds an admission controller or fails the test.
func mustAdmission(t *testing.T, r Resources) *Admission {
	t.Helper()
	a, err := NewAdmission(r)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewAdmissionRejectsNegativeBudget(t *testing.T) {
	if _, err := NewAdmission(Resources{Buffers: -1}); err == nil {
		t.Error("negative budget accepted")
	}
}

func TestAdmissionReserveStriped(t *testing.T) {
	adm := mustAdmission(t, Resources{Buffers: 12, CPU: 100 * media.MBPerSecond, Bus: 200 * media.MBPerSecond})
	// A striped grant scales the buffer demand by the stripe width: one
	// staging buffer per participating disk.
	g, err := adm.ReserveStriped(Resources{Buffers: 2, CPU: 10 * media.MBPerSecond, Bus: 20 * media.MBPerSecond}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.Width() != 4 {
		t.Errorf("grant width %d, want 4", g.Width())
	}
	if used := adm.Used(); used.Buffers != 8 || used.CPU != 10*media.MBPerSecond {
		t.Errorf("Used = %v, want 8 buffers and unscaled rates", used)
	}
	// The scaled demand is what admission judges: a request whose width
	// multiplies it past the budget fails even though the base fits.
	if _, err := adm.ReserveStriped(Resources{Buffers: 2}, 3); !errors.Is(err, ErrAdmission) {
		t.Errorf("over-wide reservation error = %v", err)
	}
	g.Release()
	if !adm.Used().IsZero() {
		t.Error("striped release did not settle every component")
	}
	if _, err := adm.ReserveStriped(Resources{Buffers: 1}, 0); err == nil {
		t.Error("zero width accepted")
	}
	// Width 1 is exactly a plain reservation.
	g1, err := adm.ReserveStriped(Resources{Buffers: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Width() != 1 || adm.Used().Buffers != 2 {
		t.Errorf("width-1 grant width=%d used=%v", g1.Width(), adm.Used())
	}
	g1.Release()
}
