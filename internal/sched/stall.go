package sched

import (
	"fmt"
	"sync"

	"avdb/internal/avtime"
	"avdb/internal/obs"
)

// StallDetector watches one stream's scheduled-versus-actual presentation
// times — the same observations a Monitor accumulates — and detects
// sustained stalls: runs of consecutive deadline misses long enough that
// jitter cannot explain them.  A stall is the signal the degradation
// machinery acts on (a device retrying behind the stream, or a link whose
// bandwidth collapsed); isolated misses are left to the resynchronization
// controller.
//
// The detector is edge-triggered: OnStall fires once when the miss run
// first reaches the threshold, and OnRecover fires once when a deadline
// is met again.  Both callbacks run synchronously on the recording
// goroutine, which in the discrete-event model is the graph runner.
type StallDetector struct {
	mu        sync.Mutex
	mon       *Monitor
	threshold int
	run       int // current consecutive-miss run
	stalled   bool
	episodes  int
	onStall   func(at avtime.WorldTime)
	onRecover func(at avtime.WorldTime)

	resync *Resync
	track  string
	sink   obs.Sink
}

// SetSink installs an observability sink: stall edges emit the
// stream.stalls / stream.recoveries counters.  The detector's internal
// monitor is left uninstrumented — the stream's own Monitor is the one
// that reports deadline.* metrics, and instrumenting both would double
// every observation.
func (d *StallDetector) SetSink(s obs.Sink) {
	d.mu.Lock()
	d.sink = s
	d.mu.Unlock()
}

// NewStallDetector returns a detector that declares a stall after
// threshold consecutive presentations each later than tolerance.
func NewStallDetector(tolerance avtime.WorldTime, threshold int) *StallDetector {
	if threshold <= 0 {
		panic(fmt.Sprintf("sched: stall threshold must be positive, got %d", threshold))
	}
	return &StallDetector{mon: NewMonitor(tolerance), threshold: threshold}
}

// OnStall registers the stall callback.
func (d *StallDetector) OnStall(fn func(at avtime.WorldTime)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.onStall = fn
}

// OnRecover registers the recovery callback.
func (d *StallDetector) OnRecover(fn func(at avtime.WorldTime)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.onRecover = fn
}

// FeedResync forwards every recorded lateness to a resynchronization
// controller under the given track name, so that a stalled track's
// siblings receive corrections that keep the composite temporally
// correlated while the stall lasts.
func (d *StallDetector) FeedResync(r *Resync, track string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.resync, d.track = r, track
}

// Record notes one presentation and fires the edge callbacks.
func (d *StallDetector) Record(scheduled, actual avtime.WorldTime) {
	d.mu.Lock()
	d.mon.Record(scheduled, actual)
	late := actual - scheduled
	if late < 0 {
		late = 0
	}
	if d.resync != nil {
		d.resync.Observe(d.track, late)
	}
	var fire func(avtime.WorldTime)
	if late > d.mon.tolerance {
		d.run++
		if !d.stalled && d.run >= d.threshold {
			d.stalled = true
			d.episodes++
			fire = d.onStall
			if d.sink != nil {
				d.sink.Count("stream.stalls", 1)
			}
		}
	} else {
		d.run = 0
		if d.stalled {
			d.stalled = false
			fire = d.onRecover
			if d.sink != nil {
				d.sink.Count("stream.recoveries", 1)
			}
		}
	}
	d.mu.Unlock()
	if fire != nil {
		fire(actual)
	}
}

// Stalled reports whether the stream is currently considered stalled.
func (d *StallDetector) Stalled() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stalled
}

// Episodes reports how many distinct stalls have been detected.
func (d *StallDetector) Episodes() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.episodes
}

// Monitor exposes the underlying deadline statistics.
func (d *StallDetector) Monitor() *Monitor {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.mon
}
