package sched

import (
	"reflect"
	"testing"

	"avdb/internal/avtime"
)

func TestRunSetDueBatchOrder(t *testing.T) {
	var s RunSet
	if _, _, ok := s.DueBatch(); ok {
		t.Fatal("empty set reported a due batch")
	}
	a := s.Admit(0)
	b := s.Admit(0)
	c := s.Admit(50 * avtime.Millisecond)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	due, ids, ok := s.DueBatch()
	if !ok || due != 0 {
		t.Fatalf("DueBatch = %v,%v, want due 0", due, ok)
	}
	// Ties break in admission order.
	if !reflect.DeepEqual(ids, []RunID{a, b}) {
		t.Fatalf("batch = %v, want [%v %v]", ids, a, b)
	}

	// Reschedule the first past the third: the batch moves on.
	s.Reschedule(a, 100*avtime.Millisecond)
	s.Reschedule(b, 50*avtime.Millisecond)
	due, ids, _ = s.DueBatch()
	if due != 50*avtime.Millisecond {
		t.Fatalf("due = %v, want 50ms", due)
	}
	// b and c now tie; b was admitted first.
	if !reflect.DeepEqual(ids, []RunID{b, c}) {
		t.Fatalf("batch = %v, want [%v %v]", ids, b, c)
	}

	s.Remove(b)
	due, ids, _ = s.DueBatch()
	if due != 50*avtime.Millisecond || !reflect.DeepEqual(ids, []RunID{c}) {
		t.Fatalf("after remove: due=%v ids=%v", due, ids)
	}
	s.Remove(c)
	s.Remove(a)
	if s.Len() != 0 {
		t.Fatalf("Len after removals = %d", s.Len())
	}
	// Unknown ids are ignored, not a panic.
	s.Remove(a)
	s.Reschedule(b, 0)

	// Ids keep increasing after drain, so a restarted playback's entry
	// never collides with a retired one.
	d := s.Admit(0)
	if d <= c {
		t.Errorf("Admit after drain reused id space: %v <= %v", d, c)
	}
}
