package sched

import (
	"fmt"

	"avdb/internal/avtime"
	"avdb/internal/obs"
)

// Monitor accumulates the scheduled-versus-actual presentation times of
// one stream and summarizes how well it held its deadlines.  It is the
// measurement side of client-visible scheduling: the admission-control
// experiments report deadline-miss rates from Monitors.
type Monitor struct {
	tolerance avtime.WorldTime
	sink      obs.Sink

	count   int
	misses  int
	maxLate avtime.WorldTime
	sumLate avtime.WorldTime
}

// NewMonitor returns a monitor that counts a presentation as missed when
// it runs later than tolerance past its scheduled time.
func NewMonitor(tolerance avtime.WorldTime) *Monitor {
	if tolerance < 0 {
		panic("sched: negative deadline tolerance")
	}
	return &Monitor{tolerance: tolerance}
}

// SetSink installs an observability sink.  Each Record emits
// deadline.presented (and deadline.missed when late past tolerance) and
// observes the lateness into the deadline.lateness_us histogram.
func (m *Monitor) SetSink(s obs.Sink) { m.sink = s }

// Record notes one presentation.
func (m *Monitor) Record(scheduled, actual avtime.WorldTime) {
	m.count++
	late := actual - scheduled
	if late < 0 {
		late = 0
	}
	m.sumLate += late
	if late > m.maxLate {
		m.maxLate = late
	}
	missed := late > m.tolerance
	if missed {
		m.misses++
	}
	if m.sink != nil {
		m.sink.Count("deadline.presented", 1)
		if missed {
			m.sink.Count("deadline.missed", 1)
		}
		m.sink.Observe("deadline.lateness_us", int64(late))
	}
}

// Count reports the number of presentations recorded.
func (m *Monitor) Count() int { return m.count }

// Misses reports how many presentations ran later than the tolerance.
func (m *Monitor) Misses() int { return m.misses }

// MissRate reports the fraction of missed deadlines.
func (m *Monitor) MissRate() float64 {
	if m.count == 0 {
		return 0
	}
	return float64(m.misses) / float64(m.count)
}

// MaxLateness reports the worst observed lateness.
func (m *Monitor) MaxLateness() avtime.WorldTime { return m.maxLate }

// MeanLateness reports the average lateness.
func (m *Monitor) MeanLateness() avtime.WorldTime {
	if m.count == 0 {
		return 0
	}
	return m.sumLate / avtime.WorldTime(m.count)
}

// String summarizes the monitor.
func (m *Monitor) String() string {
	return fmt.Sprintf("%d presented, %d missed (%.1f%%), max %v late",
		m.count, m.misses, 100*m.MissRate(), m.maxLate)
}
