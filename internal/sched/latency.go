package sched

import (
	"fmt"
	"math/rand"
	"sync"

	"avdb/internal/avtime"
)

// Latency models the processing delay of one activity or path stage: a
// fixed base plus uniformly distributed jitter in [0, Jitter].  Jitter is
// drawn from a seeded PRNG — "because of unpredictable system latencies,
// AV values tend to jitter and require regular resynchronization" (§3.3)
// — and being seeded keeps every experiment reproducible.
type Latency struct {
	base   avtime.WorldTime
	jitter avtime.WorldTime

	mu  sync.Mutex
	rng *rand.Rand
}

// NewLatency returns a latency model.
func NewLatency(base, jitter avtime.WorldTime, seed int64) *Latency {
	if base < 0 || jitter < 0 {
		panic(fmt.Sprintf("sched: invalid latency base=%v jitter=%v", base, jitter))
	}
	return &Latency{base: base, jitter: jitter, rng: rand.New(rand.NewSource(seed))}
}

// Base reports the fixed component.
func (l *Latency) Base() avtime.WorldTime { return l.base }

// MaxJitter reports the jitter bound.
func (l *Latency) MaxJitter() avtime.WorldTime { return l.jitter }

// Sample draws one delay.
func (l *Latency) Sample() avtime.WorldTime {
	if l.jitter == 0 {
		return l.base
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base + avtime.WorldTime(l.rng.Int63n(int64(l.jitter)+1))
}
