package sched

import (
	"math/rand"
	"testing"

	"avdb/internal/avtime"
)

// runset_property_test.go is the PR 8 companion to the linear-scan
// equivalence test: where TestRunSetHeapMatchesLinearScan checks the
// heap's *answers*, this test checks its *structure* after every single
// operation — the heap ordering invariant and the id→index map that
// makes Reschedule/Remove O(log n) — and that DueBatch's reused result
// buffer never leaks state between calls.

// checkRunSetInvariants asserts the structural invariants the buffer-
// reusing implementation must preserve after any operation.
func checkRunSetInvariants(t *testing.T, s *RunSet, seed int64, step int) {
	t.Helper()
	// Heap property: no child orders before its parent.
	for i := 1; i < len(s.heap); i++ {
		parent := (i - 1) / 2
		if s.less(i, parent) {
			t.Fatalf("seed %d step %d: heap invariant broken at %d (parent %d): %+v < %+v",
				seed, step, i, parent, s.heap[i], s.heap[parent])
		}
	}
	// pos map consistency: exactly one index per live id, and it points
	// at the entry carrying that id.
	if s.pos != nil && len(s.pos) != len(s.heap) {
		t.Fatalf("seed %d step %d: pos has %d entries, heap has %d", seed, step, len(s.pos), len(s.heap))
	}
	for i, e := range s.heap {
		if j, ok := s.pos[e.id]; !ok || j != i {
			t.Fatalf("seed %d step %d: pos[%v] = %d,%v, heap index is %d", seed, step, e.id, j, ok, i)
		}
	}
}

// TestRunSetPropertyOps drives randomized Admit/Reschedule/Remove/
// DueBatch sequences against the linear-scan reference, checking the
// structural invariants and the batch answer after every op.  DueBatch
// is called twice in a row at each check: with the result buffer reused
// across calls, the second answer must be byte-identical to the first,
// and a batch captured before a mutation must not be consulted after it
// (the test copies, as the documented contract requires).
func TestRunSetPropertyOps(t *testing.T) {
	for _, seed := range []int64{3, 11, 29, 71, 2026} {
		rng := rand.New(rand.NewSource(seed))
		var heap RunSet
		var linear linearRunSet
		var live []RunID

		due := func() avtime.WorldTime {
			return avtime.WorldTime(rng.Intn(6)) * 10 * avtime.Millisecond
		}
		check := func(step int) {
			checkRunSetInvariants(t, &heap, seed, step)
			hd, hids, hok := heap.DueBatch()
			// Copy before calling again: the second call overwrites the
			// shared buffer.
			first := append([]RunID(nil), hids...)
			hd2, hids2, hok2 := heap.DueBatch()
			if hok != hok2 || hd != hd2 || len(first) != len(hids2) {
				t.Fatalf("seed %d step %d: DueBatch not idempotent: (%v,%v,%v) then (%v,%v,%v)",
					seed, step, hd, first, hok, hd2, hids2, hok2)
			}
			for i := range first {
				if first[i] != hids2[i] {
					t.Fatalf("seed %d step %d: reused buffer corrupted batch: %v vs %v", seed, step, first, hids2)
				}
			}
			ld, lids, lok := linear.DueBatch()
			if hok != lok || hd != ld || len(first) != len(lids) {
				t.Fatalf("seed %d step %d: heap batch (%v,%v,%v) != linear (%v,%v,%v)",
					seed, step, hd, first, hok, ld, lids, lok)
			}
			for i := range first {
				if first[i] != lids[i] {
					t.Fatalf("seed %d step %d: batch order diverged: %v vs %v", seed, step, first, lids)
				}
			}
			if heap.Len() != len(linear.entries) {
				t.Fatalf("seed %d step %d: Len %d != %d", seed, step, heap.Len(), len(linear.entries))
			}
		}

		for step := 0; step < 3000; step++ {
			switch op := rng.Intn(10); {
			case op < 4 || len(live) == 0: // admit
				d := due()
				hid := heap.Admit(d)
				lid := linear.Admit(d)
				if hid != lid {
					t.Fatalf("seed %d step %d: Admit ids diverge: %v != %v", seed, step, hid, lid)
				}
				live = append(live, hid)
			case op < 6: // reschedule a random live run
				id := live[rng.Intn(len(live))]
				d := due()
				heap.Reschedule(id, d)
				linear.Reschedule(id, d)
			case op < 8: // remove a random live run
				i := rng.Intn(len(live))
				id := live[i]
				heap.Remove(id)
				linear.Remove(id)
				live = append(live[:i], live[i+1:]...)
			default: // the engine's step: pop the batch, reschedule each member
				_, ids, ok := heap.DueBatch()
				if ok {
					// The batch buffer is owned by the set; Reschedule never
					// touches it, so iterating while rescheduling is the
					// engine's documented usage.
					for _, id := range ids {
						d := due()
						heap.Reschedule(id, d)
						linear.Reschedule(id, d)
					}
				}
			}
			check(step)
		}
	}
}
