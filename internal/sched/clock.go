// Package sched provides the stream-scheduling substrate of the AV
// database: a virtual presentation clock, admission control over shared
// resources (buffers, CPU, bus bandwidth), per-activity latency models
// with bounded seeded jitter, deadline monitoring, and the
// resynchronization controller that keeps the tracks of a composite
// stream temporally correlated (§3.3 "scheduling").
//
// All rate-governed behavior in the system runs against a Clock.  Tests
// and benchmarks drive a VirtualClock, making hour-long presentations
// execute in microseconds and deterministically.
package sched

import (
	"sync"

	"avdb/internal/avtime"
)

// Clock is a source of world time.
type Clock interface {
	// Now reports the current world time.
	Now() avtime.WorldTime
}

// VirtualClock is a manually advanced clock for discrete-event execution.
// The zero value reads time zero and is ready to use.
type VirtualClock struct {
	mu  sync.Mutex
	now avtime.WorldTime
}

// NewVirtualClock returns a virtual clock reading start.
func NewVirtualClock(start avtime.WorldTime) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now implements Clock.
func (c *VirtualClock) Now() avtime.WorldTime {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by dw.  Moving backward panics: world
// time is monotone.
func (c *VirtualClock) Advance(dw avtime.WorldTime) {
	if dw < 0 {
		panic("sched: clock moved backward")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += dw
}

// AdvanceTo moves the clock to w if w is later than now; earlier times
// are ignored (several streams may report progress out of order).
func (c *VirtualClock) AdvanceTo(w avtime.WorldTime) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w > c.now {
		c.now = w
	}
}

// AdvanceGate coordinates clock advances for an executor whose lanes
// complete out of order.  Lanes Propose the world times their chunks
// reached; the executor alone moves the clock — once per scheduling
// interval via CommitTick, and once at the end via Drain, which extends
// the clock to the latest proposed arrival so in-flight deliveries whose
// accumulated latency lands past the final tick are still covered by the
// run's timeline.
type AdvanceGate struct {
	clock *VirtualClock

	mu     sync.Mutex
	latest avtime.WorldTime
}

// NewAdvanceGate returns a gate over the clock.
func NewAdvanceGate(c *VirtualClock) *AdvanceGate {
	if c == nil {
		panic("sched: advance gate needs a clock")
	}
	return &AdvanceGate{clock: c}
}

// Propose records a world time a lane reached.  Proposals never move the
// clock; they only raise the drain horizon.  Safe for concurrent use.
func (g *AdvanceGate) Propose(w avtime.WorldTime) {
	g.mu.Lock()
	if w > g.latest {
		g.latest = w
	}
	g.mu.Unlock()
}

// Latest reports the highest proposed time so far.
func (g *AdvanceGate) Latest() avtime.WorldTime {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.latest
}

// CommitTick advances the clock to the end of one scheduling interval.
func (g *AdvanceGate) CommitTick(w avtime.WorldTime) {
	g.clock.AdvanceTo(w)
}

// Drain advances the clock to the latest proposed time and returns the
// clock's final reading, which is guaranteed to cover every proposal.
func (g *AdvanceGate) Drain() avtime.WorldTime {
	g.clock.AdvanceTo(g.Latest())
	return g.clock.Now()
}
