package sched

import (
	"errors"
	"sync"
	"testing"

	"avdb/internal/media"
)

// grantFixture reserves one grant from a fresh controller.
func grantFixture(t *testing.T, total, req Resources) (*Admission, *Grant) {
	t.Helper()
	a, err := NewAdmission(total)
	if err != nil {
		t.Fatal(err)
	}
	g, err := a.Reserve(req)
	if err != nil {
		t.Fatal(err)
	}
	return a, g
}

func TestGrantShrinkAfterReleaseIsSentinel(t *testing.T) {
	total := Resources{Buffers: 8, CPU: 8 * media.MBPerSecond, Bus: 8 * media.MBPerSecond}
	req := Resources{Buffers: 4, CPU: 4 * media.MBPerSecond, Bus: 4 * media.MBPerSecond}
	a, g := grantFixture(t, total, req)
	g.Release()
	err := g.Shrink(Resources{Buffers: 1})
	if !errors.Is(err, ErrGrantReleased) {
		t.Fatalf("Shrink after Release = %v, want ErrGrantReleased", err)
	}
	// The failed shrink must not have disturbed the accounting.
	if used := a.Used(); !used.IsZero() {
		t.Fatalf("used = %v after release + failed shrink, want zero", used)
	}
}

func TestGrantShrinkThatGrowsIsSentinel(t *testing.T) {
	total := Resources{Buffers: 8, CPU: 8 * media.MBPerSecond, Bus: 8 * media.MBPerSecond}
	req := Resources{Buffers: 2, CPU: 2 * media.MBPerSecond, Bus: 2 * media.MBPerSecond}
	a, g := grantFixture(t, total, req)
	// Growing even one component through Shrink is rejected whole.
	err := g.Shrink(Resources{Buffers: 1, CPU: 3 * media.MBPerSecond})
	if !errors.Is(err, ErrGrantGrow) {
		t.Fatalf("growing Shrink = %v, want ErrGrantGrow", err)
	}
	if got := g.Resources(); got != req {
		t.Fatalf("grant mutated by rejected shrink: %v, want %v", got, req)
	}
	if used := a.Used(); used != req {
		t.Fatalf("accounting mutated by rejected shrink: used %v, want %v", used, req)
	}
}

func TestGrantDoubleReleaseIsNoOp(t *testing.T) {
	total := Resources{Buffers: 8}
	a, g := grantFixture(t, total, Resources{Buffers: 3})
	g.Release()
	g.Release()
	if used := a.Used(); !used.IsZero() {
		t.Fatalf("double release corrupted accounting: used %v", used)
	}
	// The freed buffers are reservable exactly once.
	if _, err := a.Reserve(Resources{Buffers: 8}); err != nil {
		t.Fatalf("full budget not reservable after releases: %v", err)
	}
}

func TestGrantGrowRestoresWithinBudget(t *testing.T) {
	total := Resources{Buffers: 4, CPU: 4 * media.MBPerSecond, Bus: 4 * media.MBPerSecond}
	full := Resources{Buffers: 2, CPU: 2 * media.MBPerSecond, Bus: 2 * media.MBPerSecond}
	half := Resources{Buffers: 1, CPU: media.MBPerSecond, Bus: media.MBPerSecond}
	a, g := grantFixture(t, total, full)
	if err := g.Shrink(half); err != nil {
		t.Fatal(err)
	}
	if err := g.Grow(full); err != nil {
		t.Fatalf("Grow back to original failed: %v", err)
	}
	if got := g.Resources(); got != full {
		t.Fatalf("grant = %v after grow, want %v", got, full)
	}
	if used := a.Used(); used != full {
		t.Fatalf("used = %v after grow, want %v", used, full)
	}
	// Growing to a target the grant already covers is a no-op.
	if err := g.Grow(half); err != nil {
		t.Fatalf("no-op grow failed: %v", err)
	}
	if got := g.Resources(); got != full {
		t.Fatalf("no-op grow shrank the grant to %v", got)
	}
}

func TestGrantGrowFailsClosedWhenBudgetTaken(t *testing.T) {
	total := Resources{Buffers: 4}
	a, g := grantFixture(t, total, Resources{Buffers: 3})
	if err := g.Shrink(Resources{Buffers: 1}); err != nil {
		t.Fatal(err)
	}
	// Another client takes the freed headroom.
	other, err := a.Reserve(Resources{Buffers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Grow(Resources{Buffers: 3}); !errors.Is(err, ErrAdmission) {
		t.Fatalf("Grow over budget = %v, want ErrAdmission", err)
	}
	if got := g.Resources(); got != (Resources{Buffers: 1}) {
		t.Fatalf("failed grow mutated the grant: %v", got)
	}
	other.Release()
	if err := g.Grow(Resources{Buffers: 3}); err != nil {
		t.Fatalf("Grow after headroom returned: %v", err)
	}
	g.Release()
	if used := a.Used(); !used.IsZero() {
		t.Fatalf("used = %v after releases, want zero", used)
	}
	if err := g.Grow(Resources{Buffers: 1}); !errors.Is(err, ErrGrantReleased) {
		t.Fatalf("Grow after Release = %v, want ErrGrantReleased", err)
	}
}

// TestGrantLifecycleConcurrentMisuse hammers one grant with racing
// Shrink/Grow/Release misuse under -race: whatever interleaving occurs,
// the controller's accounting must balance once everything settles and
// every error must be one of the lifecycle sentinels.
func TestGrantLifecycleConcurrentMisuse(t *testing.T) {
	total := Resources{Buffers: 64, CPU: 64 * media.MBPerSecond, Bus: 64 * media.MBPerSecond}
	a, err := NewAdmission(total)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const rounds = 200
	for i := 0; i < 10; i++ {
		g, err := a.Reserve(Resources{Buffers: 8, CPU: 8 * media.MBPerSecond, Bus: 8 * media.MBPerSecond})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					switch (w + r) % 4 {
					case 0:
						err := g.Shrink(Resources{Buffers: 4, CPU: 4 * media.MBPerSecond, Bus: 4 * media.MBPerSecond})
						if err != nil && !errors.Is(err, ErrGrantReleased) && !errors.Is(err, ErrGrantGrow) {
							t.Errorf("shrink error: %v", err)
						}
					case 1:
						err := g.Grow(Resources{Buffers: 8, CPU: 8 * media.MBPerSecond, Bus: 8 * media.MBPerSecond})
						if err != nil && !errors.Is(err, ErrGrantReleased) && !errors.Is(err, ErrAdmission) {
							t.Errorf("grow error: %v", err)
						}
					case 2:
						g.Release()
					case 3:
						if used := a.Used(); !used.Fits(total) {
							t.Errorf("over-commit: used %v", used)
						}
					}
				}
			}(w)
		}
		wg.Wait()
		g.Release()
		if used := a.Used(); !used.IsZero() {
			t.Fatalf("round %d leaked: used %v", i, used)
		}
	}
}
