// Package netsim models the network between an AV database and its
// clients: links with finite capacity, propagation latency and bounded
// jitter, and connections that reserve bandwidth on a link before data
// flows.
//
// The model carries exactly the properties §3.3 needs: connection setup
// fails when a link cannot sustain the requested rate alongside existing
// reservations ("this statement would fail if insufficient network
// bandwidth were available"), and delivery times jitter inside a bounded
// window, which is what forces the resynchronization machinery of
// composite activities.  Jitter is drawn from seeded PRNGs so experiments
// are reproducible.
package netsim

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"avdb/internal/avtime"
	"avdb/internal/media"
	"avdb/internal/obs"
)

// ErrBandwidth is wrapped by connection-admission failures.
var ErrBandwidth = fmt.Errorf("netsim: insufficient link bandwidth")

// ErrLinkDown is wrapped by transfers attempted across a partitioned
// link.
var ErrLinkDown = fmt.Errorf("netsim: link down")

// ErrClosed is wrapped by operations on a closed connection.
var ErrClosed = fmt.Errorf("netsim: connection closed")

// TransferFault is a fault hook's verdict on one transfer: the link may
// be partitioned (the transfer fails), running degraded (serialization
// slows by SlowFactor), or the chunk may be lost or corrupted in flight.
type TransferFault struct {
	Down       bool
	SlowFactor float64 // > 1 multiplies serialization time; <= 1 means none
	Drop       bool
	Corrupt    bool
}

// FaultHook is consulted on every transfer; a fault injector implements
// it to make the simulated network misbehave on a deterministic
// schedule.  A nil hook is a fault-free link.
type FaultHook interface {
	TransferFault(linkID string, bytes int64) TransferFault
}

// Delivery describes how one transfer went: the world time it occupied
// and whether the payload survived the trip.
type Delivery struct {
	Time      avtime.WorldTime
	Dropped   bool // lost in flight; Time is still consumed
	Corrupted bool // delivered, but the payload is damaged
}

// Link is one network path between the database and a client site.
type Link struct {
	id        string
	capacity  media.DataRate
	latency   avtime.WorldTime
	maxJitter avtime.WorldTime

	mu       sync.Mutex
	reserved media.DataRate
	seed     int64
	nextConn int
	hook     FaultHook

	sink obs.Sink
	// Metric names are precomputed at SetSink time so the transfer path
	// never formats strings.
	mTransfers, mBytes, mDropped, mCorrupted, mDown string
}

// NewLink returns a link with the given capacity, propagation latency and
// jitter bound.  The seed makes every connection's jitter sequence
// deterministic.
func NewLink(id string, capacity media.DataRate, latency, maxJitter avtime.WorldTime, seed int64) *Link {
	if capacity <= 0 || latency < 0 || maxJitter < 0 {
		panic(fmt.Sprintf("netsim: invalid link %q", id))
	}
	return &Link{id: id, capacity: capacity, latency: latency, maxJitter: maxJitter, seed: seed}
}

// ID returns the link's identifier.
func (l *Link) ID() string { return l.id }

// Capacity reports the link's total bandwidth.
func (l *Link) Capacity() media.DataRate { return l.capacity }

// Latency reports the propagation latency.
func (l *Link) Latency() avtime.WorldTime { return l.latency }

// MaxJitter reports the jitter bound.
func (l *Link) MaxJitter() avtime.WorldTime { return l.maxJitter }

// SetFaultHook installs a fault hook consulted on every transfer; nil
// clears it.
func (l *Link) SetFaultHook(h FaultHook) {
	l.mu.Lock()
	l.hook = h
	l.mu.Unlock()
}

// SetSink installs an observability sink.  Transfers over the link emit
// net.<id>.transfers / bytes / dropped / corrupted / down counters; nil
// clears the sink.
func (l *Link) SetSink(s obs.Sink) {
	l.mu.Lock()
	l.sink = s
	if s != nil && l.mTransfers == "" {
		prefix := "net." + l.id + "."
		l.mTransfers = prefix + "transfers"
		l.mBytes = prefix + "bytes"
		l.mDropped = prefix + "dropped"
		l.mCorrupted = prefix + "corrupted"
		l.mDown = prefix + "down"
	}
	l.mu.Unlock()
}

// Reserved reports the bandwidth currently reserved by open connections.
func (l *Link) Reserved() media.DataRate {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.reserved
}

// Free reports the unreserved bandwidth.
func (l *Link) Free() media.DataRate {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.capacity - l.reserved
}

// Connect reserves rate on the link and returns an open connection.  It
// fails when the link cannot sustain the rate alongside existing
// reservations.
func (l *Link) Connect(rate media.DataRate) (*Conn, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("netsim: connection rate must be positive, got %v", rate)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.reserved+rate > l.capacity {
		return nil, fmt.Errorf("%w: link %q: %v requested, %v of %v free",
			ErrBandwidth, l.id, rate, l.capacity-l.reserved, l.capacity)
	}
	l.reserved += rate
	id := l.nextConn
	l.nextConn++
	return &Conn{
		link: l,
		id:   id,
		rate: rate,
		rng:  rand.New(rand.NewSource(l.seed + int64(id)*7919)),
		open: true,
	}, nil
}

// Conn is an open connection with a reserved data rate.
type Conn struct {
	link *Link
	id   int
	rate media.DataRate

	mu       sync.Mutex
	rng      *rand.Rand
	open     bool
	bytes    int64 // total bytes carried
	messages int64 // total transfers
}

// Rate reports the connection's reserved rate.
func (c *Conn) Rate() media.DataRate {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rate
}

// Link returns the underlying link.
func (c *Conn) Link() *Link { return c.link }

// IsOpen reports whether the connection is open.
func (c *Conn) IsOpen() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.open
}

// Transfer accounts for moving the given bytes and reports the world time
// the transfer occupies: propagation latency, serialization at the
// reserved rate, and one jitter sample.  Chunks lost or corrupted by an
// installed fault hook still consume their time; callers that need to
// distinguish them use TransferChunk.
func (c *Conn) Transfer(bytes int64) (avtime.WorldTime, error) {
	d, err := c.TransferChunk(bytes)
	return d.Time, err
}

// TransferChunk accounts for moving the given bytes and reports the full
// delivery outcome, including in-flight loss and corruption injected by
// the link's fault hook.  A partitioned link fails with ErrLinkDown.
func (c *Conn) TransferChunk(bytes int64) (Delivery, error) {
	if bytes < 0 {
		return Delivery{}, fmt.Errorf("netsim: negative transfer %d", bytes)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.open {
		return Delivery{}, fmt.Errorf("%w: transfer on closed connection", ErrClosed)
	}
	c.link.mu.Lock()
	hook := c.link.hook
	sink := c.link.sink
	// Copy the precomputed metric names while the lock is held.
	mTransfers, mBytes := c.link.mTransfers, c.link.mBytes
	mDropped, mCorrupted, mDown := c.link.mDropped, c.link.mCorrupted, c.link.mDown
	c.link.mu.Unlock()
	var f TransferFault
	if hook != nil {
		f = hook.TransferFault(c.link.id, bytes)
	}
	if f.Down {
		if sink != nil {
			sink.Count(mDown, 1)
		}
		return Delivery{}, fmt.Errorf("%w: link %q", ErrLinkDown, c.link.id)
	}
	c.bytes += bytes
	c.messages++
	if sink != nil {
		sink.Count(mTransfers, 1)
		sink.Count(mBytes, bytes)
		if f.Drop {
			sink.Count(mDropped, 1)
		}
		if f.Corrupt {
			sink.Count(mCorrupted, 1)
		}
	}
	ser := avtime.WorldTime(bytes * int64(avtime.Second) / int64(c.rate))
	if f.SlowFactor > 1 {
		ser = avtime.WorldTime(float64(ser) * f.SlowFactor)
	}
	t := c.link.latency + ser
	if c.link.maxJitter > 0 {
		t += avtime.WorldTime(c.rng.Int63n(int64(c.link.maxJitter) + 1))
	}
	return Delivery{Time: t, Dropped: f.Drop, Corrupted: f.Corrupt}, nil
}

// Renegotiate changes the connection's reserved rate in place — the
// network half of a quality renegotiation.  Lowering the rate always
// succeeds and returns bandwidth to the link; raising it fails when the
// link cannot sustain the increase alongside existing reservations.
func (c *Conn) Renegotiate(rate media.DataRate) error {
	if rate <= 0 {
		return fmt.Errorf("netsim: connection rate must be positive, got %v", rate)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.open {
		return fmt.Errorf("%w: renegotiate on closed connection", ErrClosed)
	}
	delta := rate - c.rate
	c.link.mu.Lock()
	if delta > 0 && c.link.reserved+delta > c.link.capacity {
		free := c.link.capacity - c.link.reserved
		c.link.mu.Unlock()
		return fmt.Errorf("%w: link %q: %v more requested, %v free", ErrBandwidth, c.link.id, delta, free)
	}
	c.link.reserved += delta
	if c.link.reserved < 0 {
		c.link.reserved = 0
	}
	c.link.mu.Unlock()
	c.rate = rate
	return nil
}

// BytesCarried reports the total bytes moved over the connection.
func (c *Conn) BytesCarried() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Messages reports the number of transfers.
func (c *Conn) Messages() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.messages
}

// Close releases the connection's bandwidth.  Closing twice is a no-op.
func (c *Conn) Close() {
	c.mu.Lock()
	if !c.open {
		c.mu.Unlock()
		return
	}
	c.open = false
	rate := c.rate
	c.mu.Unlock()
	c.link.mu.Lock()
	c.link.reserved -= rate
	if c.link.reserved < 0 {
		c.link.reserved = 0
	}
	c.link.mu.Unlock()
}

// Network is a registry of links.
type Network struct {
	mu    sync.Mutex
	links map[string]*Link
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{links: make(map[string]*Link)}
}

// AddLink registers a link; duplicate IDs are an error.
func (n *Network) AddLink(l *Link) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.links[l.id]; dup {
		return fmt.Errorf("netsim: duplicate link %q", l.id)
	}
	n.links[l.id] = l
	return nil
}

// Link returns the link with the given ID.
func (n *Network) Link(id string) (*Link, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	l, ok := n.links[id]
	return l, ok
}

// Links returns all link IDs, sorted.
func (n *Network) Links() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	ids := make([]string, 0, len(n.links))
	for id := range n.links {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
