// Package netsim models the network between an AV database and its
// clients: links with finite capacity, propagation latency and bounded
// jitter, and connections that reserve bandwidth on a link before data
// flows.
//
// The model carries exactly the properties §3.3 needs: connection setup
// fails when a link cannot sustain the requested rate alongside existing
// reservations ("this statement would fail if insufficient network
// bandwidth were available"), and delivery times jitter inside a bounded
// window, which is what forces the resynchronization machinery of
// composite activities.  Jitter is drawn from seeded PRNGs so experiments
// are reproducible.
package netsim

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"avdb/internal/avtime"
	"avdb/internal/media"
)

// ErrBandwidth is wrapped by connection-admission failures.
var ErrBandwidth = fmt.Errorf("netsim: insufficient link bandwidth")

// Link is one network path between the database and a client site.
type Link struct {
	id        string
	capacity  media.DataRate
	latency   avtime.WorldTime
	maxJitter avtime.WorldTime

	mu       sync.Mutex
	reserved media.DataRate
	seed     int64
	nextConn int
}

// NewLink returns a link with the given capacity, propagation latency and
// jitter bound.  The seed makes every connection's jitter sequence
// deterministic.
func NewLink(id string, capacity media.DataRate, latency, maxJitter avtime.WorldTime, seed int64) *Link {
	if capacity <= 0 || latency < 0 || maxJitter < 0 {
		panic(fmt.Sprintf("netsim: invalid link %q", id))
	}
	return &Link{id: id, capacity: capacity, latency: latency, maxJitter: maxJitter, seed: seed}
}

// ID returns the link's identifier.
func (l *Link) ID() string { return l.id }

// Capacity reports the link's total bandwidth.
func (l *Link) Capacity() media.DataRate { return l.capacity }

// Latency reports the propagation latency.
func (l *Link) Latency() avtime.WorldTime { return l.latency }

// MaxJitter reports the jitter bound.
func (l *Link) MaxJitter() avtime.WorldTime { return l.maxJitter }

// Reserved reports the bandwidth currently reserved by open connections.
func (l *Link) Reserved() media.DataRate {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.reserved
}

// Free reports the unreserved bandwidth.
func (l *Link) Free() media.DataRate {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.capacity - l.reserved
}

// Connect reserves rate on the link and returns an open connection.  It
// fails when the link cannot sustain the rate alongside existing
// reservations.
func (l *Link) Connect(rate media.DataRate) (*Conn, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("netsim: connection rate must be positive, got %v", rate)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.reserved+rate > l.capacity {
		return nil, fmt.Errorf("%w: link %q: %v requested, %v of %v free",
			ErrBandwidth, l.id, rate, l.capacity-l.reserved, l.capacity)
	}
	l.reserved += rate
	id := l.nextConn
	l.nextConn++
	return &Conn{
		link: l,
		id:   id,
		rate: rate,
		rng:  rand.New(rand.NewSource(l.seed + int64(id)*7919)),
		open: true,
	}, nil
}

// Conn is an open connection with a reserved data rate.
type Conn struct {
	link *Link
	id   int
	rate media.DataRate

	mu       sync.Mutex
	rng      *rand.Rand
	open     bool
	bytes    int64 // total bytes carried
	messages int64 // total transfers
}

// Rate reports the connection's reserved rate.
func (c *Conn) Rate() media.DataRate { return c.rate }

// Link returns the underlying link.
func (c *Conn) Link() *Link { return c.link }

// IsOpen reports whether the connection is open.
func (c *Conn) IsOpen() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.open
}

// Transfer accounts for moving the given bytes and reports the world time
// the transfer occupies: propagation latency, serialization at the
// reserved rate, and one jitter sample.
func (c *Conn) Transfer(bytes int64) (avtime.WorldTime, error) {
	if bytes < 0 {
		return 0, fmt.Errorf("netsim: negative transfer %d", bytes)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.open {
		return 0, fmt.Errorf("netsim: transfer on closed connection")
	}
	c.bytes += bytes
	c.messages++
	t := c.link.latency + avtime.WorldTime(bytes*int64(avtime.Second)/int64(c.rate))
	if c.link.maxJitter > 0 {
		t += avtime.WorldTime(c.rng.Int63n(int64(c.link.maxJitter) + 1))
	}
	return t, nil
}

// BytesCarried reports the total bytes moved over the connection.
func (c *Conn) BytesCarried() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Messages reports the number of transfers.
func (c *Conn) Messages() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.messages
}

// Close releases the connection's bandwidth.  Closing twice is a no-op.
func (c *Conn) Close() {
	c.mu.Lock()
	if !c.open {
		c.mu.Unlock()
		return
	}
	c.open = false
	c.mu.Unlock()
	c.link.mu.Lock()
	c.link.reserved -= c.rate
	if c.link.reserved < 0 {
		c.link.reserved = 0
	}
	c.link.mu.Unlock()
}

// Network is a registry of links.
type Network struct {
	mu    sync.Mutex
	links map[string]*Link
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{links: make(map[string]*Link)}
}

// AddLink registers a link; duplicate IDs are an error.
func (n *Network) AddLink(l *Link) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.links[l.id]; dup {
		return fmt.Errorf("netsim: duplicate link %q", l.id)
	}
	n.links[l.id] = l
	return nil
}

// Link returns the link with the given ID.
func (n *Network) Link(id string) (*Link, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	l, ok := n.links[id]
	return l, ok
}

// Links returns all link IDs, sorted.
func (n *Network) Links() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	ids := make([]string, 0, len(n.links))
	for id := range n.links {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
