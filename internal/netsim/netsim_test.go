package netsim

import (
	"errors"
	"sync"
	"testing"

	"avdb/internal/avtime"
	"avdb/internal/media"
)

func testLink() *Link {
	return NewLink("lan0", 10*media.MBPerSecond, 2*avtime.Millisecond, 0, 42)
}

func TestLinkMetadata(t *testing.T) {
	l := testLink()
	if l.ID() != "lan0" || l.Capacity() != 10*media.MBPerSecond ||
		l.Latency() != 2*avtime.Millisecond || l.MaxJitter() != 0 {
		t.Error("link metadata wrong")
	}
}

func TestConnectAdmission(t *testing.T) {
	l := testLink()
	c1, err := l.Connect(6 * media.MBPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Connect(6 * media.MBPerSecond); !errors.Is(err, ErrBandwidth) {
		t.Errorf("over-subscription error = %v", err)
	}
	if l.Free() != 4*media.MBPerSecond || l.Reserved() != 6*media.MBPerSecond {
		t.Error("accounting wrong")
	}
	c2, err := l.Connect(4 * media.MBPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	c1.Close()
	c2.Close()
	if l.Reserved() != 0 {
		t.Error("close did not release bandwidth")
	}
	if _, err := l.Connect(0); err == nil {
		t.Error("zero-rate connection accepted")
	}
	if _, err := l.Connect(-1); err == nil {
		t.Error("negative-rate connection accepted")
	}
}

func TestTransferTiming(t *testing.T) {
	l := testLink()
	c, err := l.Connect(1 * media.MBPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// 1 MB at the reserved 1 MB/s = 1s, plus 2ms propagation, no jitter.
	dt, err := c.Transfer(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if dt != avtime.Second+2*avtime.Millisecond {
		t.Errorf("Transfer = %v", dt)
	}
	if c.BytesCarried() != 1_000_000 || c.Messages() != 1 {
		t.Error("transfer accounting wrong")
	}
	if _, err := c.Transfer(-1); err == nil {
		t.Error("negative transfer accepted")
	}
	if c.Rate() != media.MBPerSecond || c.Link() != l {
		t.Error("conn metadata wrong")
	}
}

func TestTransferOnClosedConn(t *testing.T) {
	l := testLink()
	c, err := l.Connect(media.MBPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close() // double close is a no-op
	if c.IsOpen() {
		t.Error("closed conn reports open")
	}
	if _, err := c.Transfer(10); err == nil {
		t.Error("transfer on closed conn succeeded")
	}
	if l.Reserved() != 0 {
		t.Error("double close corrupted accounting")
	}
}

func TestJitterBoundedAndDeterministic(t *testing.T) {
	mk := func() *Conn {
		l := NewLink("j", media.MBPerSecond, 0, 5*avtime.Millisecond, 99)
		c, err := l.Connect(media.MBPerSecond)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c1, c2 := mk(), mk()
	for i := 0; i < 100; i++ {
		d1, err := c1.Transfer(0)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := c2.Transfer(0)
		if err != nil {
			t.Fatal(err)
		}
		if d1 != d2 {
			t.Fatalf("transfer %d: jitter not deterministic (%v vs %v)", i, d1, d2)
		}
		if d1 < 0 || d1 > 5*avtime.Millisecond {
			t.Fatalf("jitter %v outside [0, 5ms]", d1)
		}
	}
}

func TestConcurrentAdmission(t *testing.T) {
	l := NewLink("big", 100*media.BytePerSecond, 0, 0, 1)
	var wg sync.WaitGroup
	grants := make(chan *Conn, 200)
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if c, err := l.Connect(media.BytePerSecond); err == nil {
				grants <- c
			}
		}()
	}
	wg.Wait()
	close(grants)
	var n int
	for range grants {
		n++
	}
	if n != 100 {
		t.Errorf("granted %d connections of capacity 100", n)
	}
}

func TestNetworkRegistry(t *testing.T) {
	n := NewNetwork()
	if err := n.AddLink(testLink()); err != nil {
		t.Fatal(err)
	}
	if err := n.AddLink(testLink()); err == nil {
		t.Error("duplicate link accepted")
	}
	if err := n.AddLink(NewLink("atm0", media.GBPerSecond, 0, 0, 7)); err != nil {
		t.Fatal(err)
	}
	if l, ok := n.Link("lan0"); !ok || l.ID() != "lan0" {
		t.Error("Link lookup failed")
	}
	if _, ok := n.Link("nope"); ok {
		t.Error("missing link found")
	}
	if ids := n.Links(); len(ids) != 2 || ids[0] != "atm0" {
		t.Errorf("Links = %v", ids)
	}
}

func TestLinkConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero capacity":    func() { NewLink("l", 0, 0, 0, 0) },
		"negative latency": func() { NewLink("l", 1, -1, 0, 0) },
		"negative jitter":  func() { NewLink("l", 1, 0, -1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
