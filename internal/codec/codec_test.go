package codec

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"avdb/internal/avtime"
	"avdb/internal/media"
)

// smoothVideo builds n frames of a horizontal gradient with a small moving
// box — smooth enough to compress, dynamic enough to exercise P frames.
func smoothVideo(n, w, h int) *media.VideoValue {
	v := media.NewVideoValue(media.TypeRawVideo30, w, h, 8)
	for i := 0; i < n; i++ {
		f := media.NewFrame(w, h, 8)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				f.Set(x, y, byte(x*255/w))
			}
		}
		// Moving 4x4 box.
		bx := (i * 2) % (w - 4)
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				f.Set(bx+x, y, 255)
			}
		}
		if err := v.AppendFrame(f); err != nil {
			panic(err)
		}
	}
	return v
}

// staticVideo builds n identical frames.
func staticVideo(n, w, h int) *media.VideoValue {
	v := media.NewVideoValue(media.TypeRawVideo30, w, h, 8)
	for i := 0; i < n; i++ {
		f := media.NewFrame(w, h, 8)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				f.Set(x, y, byte((x+y)%251))
			}
		}
		if err := v.AppendFrame(f); err != nil {
			panic(err)
		}
	}
	return v
}

func maxPixelError(a, b *media.VideoValue) int {
	if a.NumFrames() != b.NumFrames() {
		return 1 << 20
	}
	var worst int
	for i := 0; i < a.NumFrames(); i++ {
		fa, _ := a.Frame(i)
		fb, _ := b.Frame(i)
		for p := range fa.Pix {
			d := int(fa.Pix[p]) - int(fb.Pix[p])
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

func TestRLERoundTripProperty(t *testing.T) {
	f := func(src []byte) bool {
		enc := rleEncode(nil, src)
		dec, err := rleDecode(nil, enc)
		return err == nil && bytes.Equal(dec, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRLERunsCompress(t *testing.T) {
	src := bytes.Repeat([]byte{7}, 10_000)
	enc := rleEncode(nil, src)
	if len(enc) > len(src)/50 {
		t.Errorf("10k-byte run encoded to %d bytes", len(enc))
	}
	dec, err := rleDecode(nil, enc)
	if err != nil || !bytes.Equal(dec, src) {
		t.Fatal("run round trip failed")
	}
}

func TestRLEEmptyAndErrors(t *testing.T) {
	if enc := rleEncode(nil, nil); len(enc) != 0 {
		t.Error("empty input encoded to non-empty")
	}
	if _, err := rleDecode(nil, []byte{128}); err == nil {
		t.Error("reserved control byte accepted")
	}
	if _, err := rleDecode(nil, []byte{5, 1, 2}); err == nil {
		t.Error("truncated literal accepted")
	}
	if _, err := rleDecode(nil, []byte{200}); err == nil {
		t.Error("truncated repeat accepted")
	}
}

func TestIntraLosslessAtQ0(t *testing.T) {
	c := &Intra{CodecName: "test-lossless", Typ: TypeJPEGVideo, Quant: 0}
	v := smoothVideo(5, 32, 24)
	e, err := c.Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.Decode(e)
	if err != nil {
		t.Fatal(err)
	}
	if got := maxPixelError(v, d); got != 0 {
		t.Errorf("lossless intra max error = %d", got)
	}
}

func TestIntraErrorBound(t *testing.T) {
	v := smoothVideo(5, 32, 24)
	e, err := JPEG.Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	d, err := JPEG.Decode(e)
	if err != nil {
		t.Fatal(err)
	}
	// Quant 2 drops 2 bits: error bounded by 2^1 = 2.
	if got := maxPixelError(v, d); got > 2 {
		t.Errorf("intra q=2 max error = %d, want <= 2", got)
	}
	if e.CompressionRatio() < 2 {
		t.Errorf("smooth content compressed only %.2f:1", e.CompressionRatio())
	}
}

func TestIntraQuantValidation(t *testing.T) {
	c := &Intra{CodecName: "bad", Typ: TypeJPEGVideo, Quant: 9}
	if _, err := c.Encode(smoothVideo(1, 8, 8)); err == nil {
		t.Error("quant 9 accepted")
	}
}

func TestDVIRoundTrip(t *testing.T) {
	v := smoothVideo(5, 32, 24)
	e, err := DVICodec.Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DVICodec.Decode(e)
	if err != nil {
		t.Fatal(err)
	}
	if d.Width() != 32 || d.Height() != 24 {
		t.Errorf("DVI decode geometry %dx%d", d.Width(), d.Height())
	}
	// 2x2 box downsampling of the 8px/255 gradient costs at most ~half a
	// pixel step plus quantization; bound loosely.
	if got := maxPixelError(v, d); got > 24 {
		t.Errorf("DVI max error = %d, want <= 24", got)
	}
	// DVI must compress harder than full-resolution intra.
	je, err := JPEG.Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	if e.Size() >= je.Size() {
		t.Errorf("DVI size %d not below JPEG size %d", e.Size(), je.Size())
	}
}

func TestDVIOddGeometry(t *testing.T) {
	v := smoothVideo(2, 33, 25)
	e, err := DVICodec.Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DVICodec.Decode(e)
	if err != nil {
		t.Fatal(err)
	}
	if d.Width() != 33 || d.Height() != 25 {
		t.Errorf("odd geometry decode %dx%d", d.Width(), d.Height())
	}
}

func TestInterLosslessAtQ0(t *testing.T) {
	c := &Inter{Quant: 0, GOPN: 5}
	v := smoothVideo(17, 32, 24)
	e, err := c.Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.Decode(e)
	if err != nil {
		t.Fatal(err)
	}
	if got := maxPixelError(v, d); got != 0 {
		t.Errorf("lossless inter max error = %d", got)
	}
}

func TestInterKeyFrameStructure(t *testing.T) {
	c := &Inter{Quant: 2, GOPN: 5}
	v := smoothVideo(12, 32, 24)
	e, err := c.Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < e.NumFrames(); i++ {
		f, _ := e.FrameData(i)
		if want := i%5 == 0; f.Key != want {
			t.Errorf("frame %d key = %v, want %v", i, f.Key, want)
		}
	}
	if k, _ := e.KeyFrameBefore(7); k != 5 {
		t.Errorf("KeyFrameBefore(7) = %d, want 5", k)
	}
	if _, err := e.KeyFrameBefore(99); !errors.Is(err, media.ErrOutOfRange) {
		t.Error("KeyFrameBefore past end succeeded")
	}
}

func TestInterRandomAccessMatchesSequential(t *testing.T) {
	c := &Inter{Quant: 2, GOPN: 5}
	v := smoothVideo(13, 32, 24)
	e, err := c.Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.Decode(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, 4, 5, 7, 12} {
		rf, err := c.DecodeFrame(e, i)
		if err != nil {
			t.Fatal(err)
		}
		sf, _ := d.Frame(i)
		if !rf.Equal(sf) {
			t.Errorf("random-access frame %d differs from sequential decode", i)
		}
	}
}

func TestInterBeatsIntraOnStaticContent(t *testing.T) {
	v := staticVideo(30, 32, 24)
	ie, err := MPEG.Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	je, err := JPEG.Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	if ie.Size()*2 >= je.Size() {
		t.Errorf("inter %d bytes not well below intra %d bytes on static video", ie.Size(), je.Size())
	}
}

func TestInterGOPValidation(t *testing.T) {
	c := &Inter{Quant: 2, GOPN: 0}
	if _, err := c.Encode(smoothVideo(1, 8, 8)); err == nil {
		t.Error("GOP 0 accepted")
	}
}

func TestScalableFullDecodeLossless(t *testing.T) {
	v := smoothVideo(4, 32, 24)
	sc := ScalableCodec.(*Scalable)
	e, err := sc.Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	d, err := sc.Decode(e)
	if err != nil {
		t.Fatal(err)
	}
	if got := maxPixelError(v, d); got != 0 {
		t.Errorf("full-layer scalable decode max error = %d", got)
	}
}

func TestScalableQualityImprovesWithLayers(t *testing.T) {
	v := smoothVideo(3, 32, 24)
	sc := ScalableCodec.(*Scalable)
	e, err := sc.Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	var errs [NumLayers]int
	for k := 1; k <= NumLayers; k++ {
		d, err := sc.DecodeLayers(e, k)
		if err != nil {
			t.Fatal(err)
		}
		errs[k-1] = maxPixelError(v, d)
	}
	if !(errs[0] >= errs[1] && errs[1] >= errs[2] && errs[2] == 0) {
		t.Errorf("layer errors not monotone: %v", errs)
	}
	if errs[0] == 0 {
		t.Error("single-layer decode suspiciously lossless")
	}
}

func TestScalableDropLayers(t *testing.T) {
	v := smoothVideo(3, 32, 24)
	sc := ScalableCodec.(*Scalable)
	e, err := sc.Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	dropped, err := DropLayers(e, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dropped.Size() >= e.Size() {
		t.Errorf("dropping layers did not shrink: %d -> %d", e.Size(), dropped.Size())
	}
	if dropped.Layers() != 1 {
		t.Errorf("Layers = %d", dropped.Layers())
	}
	// Base-layer decode of the dropped value matches base-layer decode of
	// the full value.
	d1, err := sc.DecodeLayers(dropped, 1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := sc.DecodeLayers(e, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !d1.Equal(d2) {
		t.Error("base layer differs after DropLayers")
	}
	// Requesting more layers than remain fails.
	if _, err := sc.DecodeLayers(dropped, 2); err == nil {
		t.Error("decode with dropped layer succeeded")
	}
	if _, err := DropLayers(e, 0); err == nil {
		t.Error("DropLayers(0) succeeded")
	}
	if _, err := DropLayers(e, 4); err == nil {
		t.Error("DropLayers(4) succeeded")
	}
	je, _ := JPEG.Encode(v)
	if _, err := DropLayers(je, 1); err == nil {
		t.Error("DropLayers on non-scalable value succeeded")
	}
}

func TestEncodedVideoValueInterface(t *testing.T) {
	v := smoothVideo(60, 16, 12)
	e, err := JPEG.Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	var val media.Value = e
	if val.Type() != TypeJPEGVideo {
		t.Error("type wrong")
	}
	if val.Duration() != 2*avtime.Second {
		t.Errorf("duration = %v, want 2s", val.Duration())
	}
	el, err := val.Element(avtime.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ef := el.(*EncodedFrame); !ef.Key || ef.ElementKind() != media.KindVideo {
		t.Error("encoded element wrong")
	}
	val.Translate(10 * avtime.Second)
	if val.Start() != 10*avtime.Second {
		t.Error("translate failed")
	}
	val.Scale(2)
	if val.Duration() != avtime.Second {
		t.Errorf("scaled duration = %v", val.Duration())
	}
	if _, err := val.ElementAt(-1); !errors.Is(err, media.ErrOutOfRange) {
		t.Error("negative element access succeeded")
	}
	if e.RawSize() != 60*16*12 {
		t.Errorf("RawSize = %d", e.RawSize())
	}
	if e.GOP() != 1 || e.Codec() != "jpeg-sim" || e.Width() != 16 || e.Height() != 12 || e.Depth() != 8 {
		t.Error("metadata wrong")
	}
}

func TestMuLawRoundTrip(t *testing.T) {
	a := media.NewAudioValue(media.TypeVoiceAudio, 1)
	samples := make([]int16, 8000)
	for i := range samples {
		samples[i] = int16(12000 * math.Sin(float64(i)*2*math.Pi*440/8000))
	}
	if err := a.AppendSamples(samples); err != nil {
		t.Fatal(err)
	}
	e, err := MuLawCodec.Encode(a)
	if err != nil {
		t.Fatal(err)
	}
	if e.Size() != 8000 {
		t.Errorf("µ-law size = %d, want 8000", e.Size())
	}
	if e.CompressionRatio() != 2 {
		t.Errorf("µ-law ratio = %v, want 2", e.CompressionRatio())
	}
	d, err := MuLawCodec.Decode(e)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumSamples() != 8000 || d.Type() != media.TypeVoiceAudio {
		t.Fatalf("decode shape wrong: %v", d)
	}
	// µ-law error is proportional to magnitude: check relative error.
	dec, _ := d.Samples(0, 8000)
	for i, s := range samples {
		diff := math.Abs(float64(dec[i]) - float64(s))
		bound := math.Abs(float64(s))/16 + 64
		if diff > bound {
			t.Fatalf("sample %d: %d -> %d (err %.0f > %.0f)", i, s, dec[i], diff, bound)
		}
	}
}

func TestMuLawExtremes(t *testing.T) {
	for _, s := range []int16{0, 1, -1, 32767, -32768, 12345, -12345} {
		d := muLawDecode(muLawEncode(s))
		diff := int32(d) - int32(s)
		if diff < 0 {
			diff = -diff
		}
		bound := int32(s)/8 + 64
		if bound < 0 {
			bound = -bound
		}
		if diff > bound+900 { // extremes clip at 32635
			t.Errorf("µ-law %d -> %d", s, d)
		}
	}
}

func TestADPCMRoundTripSNR(t *testing.T) {
	a := media.NewAudioValue(media.TypeCDAudio, 2)
	n := 44100
	samples := make([]int16, n*2)
	for i := 0; i < n; i++ {
		samples[i*2] = int16(9000 * math.Sin(float64(i)*2*math.Pi*440/44100))
		samples[i*2+1] = int16(9000 * math.Sin(float64(i)*2*math.Pi*523/44100))
	}
	if err := a.AppendSamples(samples); err != nil {
		t.Fatal(err)
	}
	e, err := ADPCMCodec.Encode(a)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := e.CompressionRatio(); ratio < 3.5 {
		t.Errorf("ADPCM ratio = %.2f, want ~4", ratio)
	}
	d, err := ADPCMCodec.Decode(e)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumSamples() != n || d.Channels() != 2 {
		t.Fatalf("decode shape wrong: %v", d)
	}
	dec, _ := d.Samples(0, n)
	var sig, noise float64
	for i := range samples {
		sig += float64(samples[i]) * float64(samples[i])
		diff := float64(dec[i]) - float64(samples[i])
		noise += diff * diff
	}
	snr := 10 * math.Log10(sig/noise)
	if snr < 20 {
		t.Errorf("ADPCM SNR = %.1f dB, want >= 20", snr)
	}
}

func TestADPCMOddSampleCount(t *testing.T) {
	a := media.NewAudioValue(media.TypeVoiceAudio, 1)
	if err := a.AppendSamples([]int16{100, -200, 300}); err != nil {
		t.Fatal(err)
	}
	e, err := ADPCMCodec.Encode(a)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ADPCMCodec.Decode(e)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumSamples() != 3 {
		t.Errorf("odd count decode = %d samples", d.NumSamples())
	}
}

func TestADPCMTruncatedPayload(t *testing.T) {
	e := &EncodedAudio{typ: TypeADPCMAudio, codec: "adpcm-sim", channels: 2, samples: 100,
		data: []byte{0, 0, 0, 0}, tr: avtime.NewTransform(avtime.RateCDAudio)}
	if _, err := ADPCMCodec.Decode(e); err == nil {
		t.Error("truncated ADPCM accepted")
	}
	e.data = nil
	if _, err := ADPCMCodec.Decode(e); err == nil {
		t.Error("headerless ADPCM accepted")
	}
}

func TestEncodedAudioValueInterface(t *testing.T) {
	a := media.NewAudioValue(media.TypeVoiceAudio, 1)
	if err := a.AppendSamples(make([]int16, 4000)); err != nil {
		t.Fatal(err)
	}
	e, err := MuLawCodec.Encode(a)
	if err != nil {
		t.Fatal(err)
	}
	var val media.Value = e
	if val.Duration() != 500*avtime.Millisecond {
		t.Errorf("duration = %v, want 0.5s", val.Duration())
	}
	if val.NumElements() != 4000 {
		t.Errorf("NumElements = %d", val.NumElements())
	}
	el, err := val.Element(0)
	if err != nil || el.Size() != 4000 {
		t.Errorf("Element = %v, %v", el, err)
	}
	if _, err := val.ElementAt(1); !errors.Is(err, media.ErrOutOfRange) {
		t.Error("ElementAt(1) succeeded")
	}
	val.Translate(avtime.Second)
	val.Scale(2)
	if val.Interval() != avtime.IntervalOf(avtime.Second, 1250*avtime.Millisecond) {
		t.Errorf("interval = %v", val.Interval())
	}
	if e.Channels() != 1 || len(e.Data()) != 4000 || e.Codec() != "mulaw" {
		t.Error("metadata wrong")
	}
}

func TestCodecRegistry(t *testing.T) {
	if c, ok := LookupVideoCodec("jpeg-sim"); !ok || c != JPEG {
		t.Error("jpeg-sim not registered")
	}
	if c, ok := LookupAudioCodec("mulaw"); !ok || c != MuLawCodec {
		t.Error("mulaw not registered")
	}
	if _, ok := LookupVideoCodec("h264"); ok {
		t.Error("h264 should not exist")
	}
	names := VideoCodecs()
	if len(names) < 4 {
		t.Errorf("VideoCodecs = %v", names)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate video codec registration did not panic")
			}
		}()
		RegisterVideoCodec(&Intra{CodecName: "jpeg-sim", Typ: TypeJPEGVideo})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate audio codec registration did not panic")
			}
		}()
		RegisterAudioCodec(MuLaw{})
	}()
}

func TestScalableStringAndMetadata(t *testing.T) {
	v := smoothVideo(2, 16, 12)
	sc := ScalableCodec.(*Scalable)
	e, err := sc.Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	if e.Layers() != NumLayers {
		t.Errorf("Layers = %d", e.Layers())
	}
	if s := e.String(); s == "" {
		t.Error("empty String")
	}
	if s := e.CompressionRatio(); s <= 0 {
		t.Error("ratio not positive")
	}
}

func TestScalableLosslessProperty(t *testing.T) {
	// Property: for any frame contents, the full-layer scalable decode is
	// bit-exact.
	sc := ScalableCodec.(*Scalable)
	f := func(seed int64, wRaw, hRaw uint8) bool {
		w, h := int(wRaw%24)+2, int(hRaw%24)+2
		v := media.NewVideoValue(media.TypeRawVideo30, w, h, 8)
		rng := rand.New(rand.NewSource(seed))
		fr := media.NewFrame(w, h, 8)
		rng.Read(fr.Pix)
		if err := v.AppendFrame(fr); err != nil {
			return false
		}
		e, err := sc.Encode(v)
		if err != nil {
			return false
		}
		d, err := sc.Decode(e)
		if err != nil {
			return false
		}
		return maxPixelError(v, d) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestInterLosslessProperty(t *testing.T) {
	// Property: at quant 0 the inter codec round-trips any content.
	f := func(seed int64, gopRaw uint8) bool {
		c := &Inter{Quant: 0, GOPN: int(gopRaw%7) + 1}
		v := media.NewVideoValue(media.TypeRawVideo30, 12, 10, 8)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 9; i++ {
			fr := media.NewFrame(12, 10, 8)
			rng.Read(fr.Pix)
			if err := v.AppendFrame(fr); err != nil {
				return false
			}
		}
		e, err := c.Encode(v)
		if err != nil {
			return false
		}
		d, err := c.Decode(e)
		if err != nil {
			return false
		}
		return maxPixelError(v, d) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
