package codec

import (
	"testing"

	"avdb/internal/media"
)

func TestStreamEncoderMatchesBatch(t *testing.T) {
	v := smoothVideo(23, 32, 24)
	batch, err := (&Inter{Quant: 2, GOPN: 5}).Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewInterStreamEncoder(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < v.NumFrames(); i++ {
		f, _ := v.Frame(i)
		ef, err := se.EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		bf, _ := batch.FrameData(i)
		if ef.Key != bf.Key {
			t.Fatalf("frame %d key flag differs", i)
		}
		if string(ef.Data) != string(bf.Data) {
			t.Fatalf("frame %d payload differs from batch encoder", i)
		}
	}
}

func TestStreamRoundTripLossless(t *testing.T) {
	v := smoothVideo(17, 32, 24)
	se, err := NewInterStreamEncoder(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := NewVideoStreamDecoder(32, 24, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < v.NumFrames(); i++ {
		f, _ := v.Frame(i)
		ef, err := se.EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sd.DecodeFrame(ef)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(f) {
			t.Fatalf("frame %d not lossless", i)
		}
	}
}

func TestStreamEncoderGeometryChangeRejected(t *testing.T) {
	se, err := NewIntraStreamEncoder(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := se.EncodeFrame(media.NewFrame(8, 8, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := se.EncodeFrame(media.NewFrame(4, 4, 8)); err == nil {
		t.Error("geometry change accepted mid-stream")
	}
	se.Reset()
	if _, err := se.EncodeFrame(media.NewFrame(4, 4, 8)); err != nil {
		t.Errorf("encode after reset failed: %v", err)
	}
	if se.Quant() != 2 || se.GOP() != 1 {
		t.Error("metadata wrong")
	}
}

func TestStreamDecoderRequiresKeyFirst(t *testing.T) {
	se, err := NewInterStreamEncoder(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := NewVideoStreamDecoder(8, 8, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := media.NewFrame(8, 8, 8)
	key, err := se.EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	p, err := se.EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	// A P frame before any key frame is rejected.
	if _, err := sd.DecodeFrame(p); err == nil {
		t.Error("P frame decoded without reference")
	}
	if _, err := sd.DecodeFrame(key); err != nil {
		t.Fatal(err)
	}
	if _, err := sd.DecodeFrame(p); err != nil {
		t.Fatal(err)
	}
	sd.Reset()
	if _, err := sd.DecodeFrame(p); err == nil {
		t.Error("P frame decoded after reset")
	}
}

func TestStreamConstructorValidation(t *testing.T) {
	if _, err := NewIntraStreamEncoder(9); err == nil {
		t.Error("quant 9 accepted")
	}
	if _, err := NewInterStreamEncoder(2, 0); err == nil {
		t.Error("GOP 0 accepted")
	}
	if _, err := NewVideoStreamDecoder(0, 8, 8, 2); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewVideoStreamDecoder(8, 8, 7, 2); err == nil {
		t.Error("unaligned depth accepted")
	}
	if _, err := NewVideoStreamDecoder(8, 8, 8, 9); err == nil {
		t.Error("quant 9 accepted by decoder")
	}
}

func TestDropFrames(t *testing.T) {
	v := smoothVideo(30, 16, 12)
	sc := ScalableCodec.(*Scalable)
	e, err := sc.Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	half, err := DropFrames(e, 2)
	if err != nil {
		t.Fatal(err)
	}
	if half.NumFrames() != 15 {
		t.Errorf("frames = %d, want 15", half.NumFrames())
	}
	// Rate halves so duration is preserved.
	if half.Duration() != e.Duration() {
		t.Errorf("duration changed: %v -> %v", e.Duration(), half.Duration())
	}
	if half.Size() >= e.Size() {
		t.Error("dropping frames did not shrink")
	}
	// Decoded frames match the retained originals.
	d, err := sc.Decode(half)
	if err != nil {
		t.Fatal(err)
	}
	full, err := sc.Decode(e)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.NumFrames(); i++ {
		got, _ := d.Frame(i)
		want, _ := full.Frame(2 * i)
		if !got.Equal(want) {
			t.Fatalf("dropped-stream frame %d differs", i)
		}
	}
	// Inter-coded values cannot drop frames (P frames lose references).
	mv, err := MPEG.Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DropFrames(mv, 2); err == nil {
		t.Error("frame dropping on inter-coded value accepted")
	}
	// Intra-coded values can.
	jv, err := JPEG.Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	jd, err := DropFrames(jv, 3)
	if err != nil {
		t.Fatal(err)
	}
	if jd.NumFrames() != 10 {
		t.Errorf("intra drop frames = %d", jd.NumFrames())
	}
	if _, err := DropFrames(e, 0); err == nil {
		t.Error("keepEvery 0 accepted")
	}
	if _, err := DropFrames(e, 1); err != nil {
		t.Error("keepEvery 1 should be identity")
	}
}
