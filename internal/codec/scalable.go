package codec

import (
	"encoding/binary"
	"fmt"

	"avdb/internal/avtime"
	"avdb/internal/media"
)

// Scalable is a three-layer spatially scalable video codec, the paper's
// "scalable video" (§4.1, citing Lippman): a value encoded once can be
// viewed at lower quality "by ignoring some of the encoded data".
//
// Layer 0 holds a quantized quarter-resolution base; layer 1 the exact
// half-resolution residual against the upsampled base; layer 2 the exact
// full-resolution residual.  Decoding all three layers is lossless;
// decoding fewer yields progressively softer frames.  DropLayers produces
// a genuinely smaller encoded value without re-encoding — the operation an
// AV database uses to serve a low-quality request from high-quality
// storage.
type Scalable struct {
	BaseQuant int // quantization of the quarter-resolution base layer
}

// ScalableCodec is the registered scalable codec.
var ScalableCodec = RegisterVideoCodec(&Scalable{BaseQuant: 2})

// NumLayers is the layer count produced by Encode.
const NumLayers = 3

// Name implements VideoCodec.
func (c *Scalable) Name() string { return "scalable-sim" }

// EncodedType implements VideoCodec.
func (c *Scalable) EncodedType() *media.Type { return TypeScalableVideo }

// Encode implements VideoCodec.
func (c *Scalable) Encode(v *media.VideoValue) (*EncodedVideo, error) {
	if err := checkQuant(c.BaseQuant); err != nil {
		return nil, err
	}
	w, h, bpp := v.Width(), v.Height(), v.Depth()/8
	hw, hh := (w+1)/2, (h+1)/2
	e := newEncodedVideo(TypeScalableVideo, c.Name(), w, h, v.Depth(), c.BaseQuant, 1, NumLayers)
	e.tr = avtime.NewTransform(v.Type().Rate)

	for i := 0; i < v.NumFrames(); i++ {
		f, err := v.Frame(i)
		if err != nil {
			return nil, err
		}
		half := downsample2(f.Pix, w, h, bpp)
		quarter := downsample2(half, hw, hh, bpp)

		// Layer 0: quantized base.
		l0 := deltaRLE(quantize(quarter, c.BaseQuant))
		reconQ := make([]byte, len(quarter))
		dequantizeInto(reconQ, quantize(quarter, c.BaseQuant), c.BaseQuant)

		// Layer 1: exact half-res residual against the upsampled base.
		predHalf := make([]byte, len(half))
		upsample2Linear(predHalf, reconQ, hw, hh, bpp)
		residHalf := make([]byte, len(half))
		for k := range half {
			residHalf[k] = half[k] - predHalf[k]
		}
		l1 := rleEncode(make([]byte, 0, 64), residHalf)

		// Layer 2: exact full-res residual against the upsampled half.
		predFull := make([]byte, len(f.Pix))
		upsample2Linear(predFull, half, w, h, bpp)
		residFull := make([]byte, len(f.Pix))
		for k := range f.Pix {
			residFull[k] = f.Pix[k] - predFull[k]
		}
		l2 := rleEncode(make([]byte, 0, 64), residFull)

		e.frames = append(e.frames, &EncodedFrame{Data: packLayers(l0, l1, l2), Key: true})
	}
	return e, nil
}

// Decode implements VideoCodec, decoding with every available layer.
func (c *Scalable) Decode(e *EncodedVideo) (*media.VideoValue, error) {
	return c.DecodeLayers(e, e.layers)
}

// DecodeLayers decodes using only the first k layers of each frame.
func (c *Scalable) DecodeLayers(e *EncodedVideo, k int) (*media.VideoValue, error) {
	v := media.NewVideoValue(media.TypeRawVideo30, e.width, e.height, e.depth)
	for i := range e.frames {
		f, err := c.DecodeFrameLayers(e, i, k)
		if err != nil {
			return nil, err
		}
		if err := v.AppendFrame(f); err != nil {
			return nil, err
		}
	}
	return v, nil
}

// DecodeFrame implements VideoCodec.
func (c *Scalable) DecodeFrame(e *EncodedVideo, i int) (*media.Frame, error) {
	return c.DecodeFrameLayers(e, i, e.layers)
}

// DecodeFrameLayers decodes frame i using the first k of its layers.
func (c *Scalable) DecodeFrameLayers(e *EncodedVideo, i, k int) (*media.Frame, error) {
	if k < 1 {
		return nil, fmt.Errorf("codec: scalable decode needs at least 1 layer, got %d", k)
	}
	if k > e.layers {
		return nil, fmt.Errorf("codec: value has %d layers, %d requested", e.layers, k)
	}
	ef, err := e.FrameData(i)
	if err != nil {
		return nil, err
	}
	layers, err := unpackLayers(ef.Data)
	if err != nil {
		return nil, fmt.Errorf("codec: frame %d: %w", i, err)
	}
	if len(layers) < k {
		return nil, fmt.Errorf("codec: frame %d holds %d layers, %d requested", i, len(layers), k)
	}

	w, h, bpp := e.width, e.height, e.depth/8
	hw, hh := (w+1)/2, (h+1)/2
	qw, qh := (hw+1)/2, (hh+1)/2

	// Layer 0: quantized quarter-resolution base.
	tq, err := undeltaRLE(layers[0], qw*qh*bpp)
	if err != nil {
		return nil, fmt.Errorf("codec: frame %d layer 0: %w", i, err)
	}
	quarter := make([]byte, len(tq))
	dequantizeInto(quarter, tq, e.quant)

	f := media.NewFrame(w, h, e.depth)
	if k == 1 {
		halfUp := make([]byte, hw*hh*bpp)
		upsample2Linear(halfUp, quarter, hw, hh, bpp)
		upsample2Linear(f.Pix, halfUp, w, h, bpp)
		return f, nil
	}

	// Layer 1: exact half resolution.
	half := make([]byte, hw*hh*bpp)
	upsample2Linear(half, quarter, hw, hh, bpp)
	resid1, err := rleDecode(make([]byte, 0, len(half)), layers[1])
	if err != nil {
		return nil, fmt.Errorf("codec: frame %d layer 1: %w", i, err)
	}
	if len(resid1) != len(half) {
		return nil, fmt.Errorf("codec: frame %d layer 1: %d bytes, want %d", i, len(resid1), len(half))
	}
	for p := range half {
		half[p] += resid1[p]
	}
	if k == 2 {
		upsample2Linear(f.Pix, half, w, h, bpp)
		return f, nil
	}

	// Layer 2: exact full resolution.
	upsample2Linear(f.Pix, half, w, h, bpp)
	resid2, err := rleDecode(make([]byte, 0, len(f.Pix)), layers[2])
	if err != nil {
		return nil, fmt.Errorf("codec: frame %d layer 2: %w", i, err)
	}
	if len(resid2) != len(f.Pix) {
		return nil, fmt.Errorf("codec: frame %d layer 2: %d bytes, want %d", i, len(resid2), len(f.Pix))
	}
	for p := range f.Pix {
		f.Pix[p] += resid2[p]
	}
	return f, nil
}

// DropLayers returns a new encoded value containing only the first k
// layers of every frame — the "ignore some of the encoded data" operation.
// The result is smaller and still decodable at layers 1..k.
func DropLayers(e *EncodedVideo, k int) (*EncodedVideo, error) {
	if e.layers == 0 {
		return nil, fmt.Errorf("codec: DropLayers on non-scalable value %q", e.codec)
	}
	if k < 1 || k > e.layers {
		return nil, fmt.Errorf("codec: keep %d of %d layers", k, e.layers)
	}
	out := newEncodedVideo(e.typ, e.codec, e.width, e.height, e.depth, e.quant, e.gop, k)
	out.tr = e.tr
	for i, ef := range e.frames {
		layers, err := unpackLayers(ef.Data)
		if err != nil {
			return nil, fmt.Errorf("codec: frame %d: %w", i, err)
		}
		out.frames = append(out.frames, &EncodedFrame{Data: packLayers(layers[:k]...), Key: true})
	}
	return out, nil
}

// DropFrames returns a new encoded value keeping every keepEvery-th
// frame, with the element rate scaled down so the presentation duration
// is preserved — temporal quality scaling, the frame-rate counterpart of
// DropLayers.  It applies only to representations whose frames are all
// independently decodable (intra-coded or scalable); dropping frames from
// an inter-coded stream would orphan its predicted frames.
func DropFrames(e *EncodedVideo, keepEvery int) (*EncodedVideo, error) {
	if keepEvery < 1 {
		return nil, fmt.Errorf("codec: keepEvery %d must be >= 1", keepEvery)
	}
	for i, f := range e.frames {
		if !f.Key {
			return nil, fmt.Errorf("codec: frame %d is predicted; cannot drop frames from %q", i, e.codec)
		}
	}
	out := newEncodedVideo(e.typ, e.codec, e.width, e.height, e.depth, e.quant, e.gop, e.layers)
	oldRate := e.tr.Rate
	out.tr = avtime.NewTransform(avtime.MakeRate(oldRate.N, oldRate.D*int64(keepEvery)))
	out.tr.Translate = e.tr.Translate
	for i := 0; i < len(e.frames); i += keepEvery {
		out.frames = append(out.frames, e.frames[i])
	}
	return out, nil
}

// packLayers concatenates layer payloads, each preceded by a big-endian
// 32-bit length.
func packLayers(layers ...[]byte) []byte {
	var n int
	for _, l := range layers {
		n += 4 + len(l)
	}
	out := make([]byte, 0, n)
	for _, l := range layers {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(l)))
		out = append(out, hdr[:]...)
		out = append(out, l...)
	}
	return out
}

// unpackLayers splits a packLayers payload.
func unpackLayers(data []byte) ([][]byte, error) {
	var layers [][]byte
	for len(data) > 0 {
		if len(data) < 4 {
			return nil, fmt.Errorf("truncated layer header")
		}
		n := int(binary.BigEndian.Uint32(data[:4]))
		data = data[4:]
		if n > len(data) {
			return nil, fmt.Errorf("layer length %d exceeds remaining %d bytes", n, len(data))
		}
		layers = append(layers, data[:n])
		data = data[n:]
	}
	return layers, nil
}
