package codec

import "fmt"

// Run-length entropy coding in the PackBits style: a control byte c is
// followed either by c+1 literal bytes (c in 0..127) or by one byte to be
// repeated 257-c times (c in 129..255).  Control value 128 is reserved.
// PackBits is the entropy stage of every codec in this package: the
// predictive/quantizing transforms in front of it turn smooth video and
// audio into long zero runs, which PackBits collapses.

const (
	maxLiteralRun = 128
	maxRepeatRun  = 128
	minRepeatRun  = 3 // shorter repeats are cheaper as literals
)

// rleEncode appends the PackBits encoding of src to dst and returns the
// extended slice.
func rleEncode(dst, src []byte) []byte {
	i := 0
	for i < len(src) {
		// Measure the repeat run starting at i.
		run := 1
		for i+run < len(src) && run < maxRepeatRun && src[i+run] == src[i] {
			run++
		}
		if run >= minRepeatRun {
			dst = append(dst, byte(257-run), src[i])
			i += run
			continue
		}
		// Gather literals up to the next worthwhile repeat run or the
		// 128-byte literal cap.
		j := i
		for j < len(src) && j-i < maxLiteralRun {
			r := 1
			for j+r < len(src) && src[j+r] == src[j] {
				r++
			}
			if r >= minRepeatRun {
				break
			}
			j += r
		}
		if j-i > maxLiteralRun {
			j = i + maxLiteralRun
		}
		n := j - i
		dst = append(dst, byte(n-1))
		dst = append(dst, src[i:j]...)
		i = j
	}
	return dst
}

// rleDecode appends the decoding of the PackBits stream src to dst.
func rleDecode(dst, src []byte) ([]byte, error) {
	i := 0
	for i < len(src) {
		c := src[i]
		i++
		switch {
		case c < 128:
			n := int(c) + 1
			if i+n > len(src) {
				return nil, fmt.Errorf("codec: truncated RLE literal run (need %d bytes, have %d)", n, len(src)-i)
			}
			dst = append(dst, src[i:i+n]...)
			i += n
		case c > 128:
			if i >= len(src) {
				return nil, fmt.Errorf("codec: truncated RLE repeat run")
			}
			n := 257 - int(c)
			v := src[i]
			i++
			for k := 0; k < n; k++ {
				dst = append(dst, v)
			}
		default:
			return nil, fmt.Errorf("codec: reserved RLE control byte 128")
		}
	}
	return dst, nil
}
