// Package codec provides the encoded representations of AV values: an
// intra-frame codec (JPEG-style), an inter-frame codec with key frames
// (MPEG-style), a coarse production codec (DVI-style), a layered scalable
// codec supporting quality down-scaling by layer dropping, and PCM/ADPCM/
// µ-law audio codecs.
//
// The codecs are real software codecs (predictive transform + quantization
// + run-length entropy coding), not wrappers: they exhibit the properties
// the paper's design arguments rest on — intra-coded video is randomly
// accessible, inter-coded video compresses better but must decode from the
// preceding key frame, and scalable video can be served at reduced quality
// by ignoring encoded layers (§4.1).
package codec

import (
	"fmt"
	"sort"
	"sync"

	"avdb/internal/avtime"
	"avdb/internal/media"
)

// Encoded media data types.  LV is the analog-videodisc representation:
// stored and retrieved as whole frames by the jukebox device, digitized on
// read; it has no software codec.
var (
	TypeJPEGVideo     = media.RegisterType(&media.Type{Name: "video/jpeg-sim", Kind: media.KindVideo, Rate: avtime.RateVideo30, Compressed: true})
	TypeMPEGVideo     = media.RegisterType(&media.Type{Name: "video/mpeg-sim", Kind: media.KindVideo, Rate: avtime.RateVideo30, Compressed: true})
	TypeDVIVideo      = media.RegisterType(&media.Type{Name: "video/dvi-sim", Kind: media.KindVideo, Rate: avtime.RateVideo30, Compressed: true})
	TypeScalableVideo = media.RegisterType(&media.Type{Name: "video/scalable-sim", Kind: media.KindVideo, Rate: avtime.RateVideo30, Compressed: true})
	TypeLVVideo       = media.RegisterType(&media.Type{Name: "video/lv-analog", Kind: media.KindVideo, Rate: avtime.RateVideo30})
	TypeADPCMAudio    = media.RegisterType(&media.Type{Name: "audio/adpcm-sim", Kind: media.KindAudio, Rate: avtime.RateCDAudio, Compressed: true})
	TypeMuLawAudio    = media.RegisterType(&media.Type{Name: "audio/mulaw", Kind: media.KindAudio, Rate: avtime.RateVoice, Compressed: true})
)

// VideoCodec encodes raw video values into an encoded representation and
// back.  Codecs are stateless and safe for concurrent use.
type VideoCodec interface {
	// Name returns the codec's registry name.
	Name() string
	// EncodedType returns the media data type of this codec's output.
	EncodedType() *media.Type
	// Encode compresses a raw video value.
	Encode(v *media.VideoValue) (*EncodedVideo, error)
	// Decode reconstructs a raw video value.  For lossy settings the
	// result approximates the original within the codec's error bound.
	Decode(e *EncodedVideo) (*media.VideoValue, error)
	// DecodeFrame reconstructs the single frame with index i, decoding
	// from the nearest preceding key frame as required.
	DecodeFrame(e *EncodedVideo, i int) (*media.Frame, error)
}

// AudioCodec encodes raw audio values into an encoded representation and
// back.
type AudioCodec interface {
	// Name returns the codec's registry name.
	Name() string
	// EncodedType returns the media data type of this codec's output.
	EncodedType() *media.Type
	// Encode compresses a raw audio value.
	Encode(a *media.AudioValue) (*EncodedAudio, error)
	// Decode reconstructs a raw audio value.
	Decode(e *EncodedAudio) (*media.AudioValue, error)
}

var codecRegistry = struct {
	sync.RWMutex
	video map[string]VideoCodec
	audio map[string]AudioCodec
}{video: make(map[string]VideoCodec), audio: make(map[string]AudioCodec)}

// RegisterVideoCodec adds a video codec to the registry; duplicate names
// panic.
func RegisterVideoCodec(c VideoCodec) VideoCodec {
	codecRegistry.Lock()
	defer codecRegistry.Unlock()
	if _, dup := codecRegistry.video[c.Name()]; dup {
		panic(fmt.Sprintf("codec: duplicate video codec %q", c.Name()))
	}
	codecRegistry.video[c.Name()] = c
	return c
}

// RegisterAudioCodec adds an audio codec to the registry; duplicate names
// panic.
func RegisterAudioCodec(c AudioCodec) AudioCodec {
	codecRegistry.Lock()
	defer codecRegistry.Unlock()
	if _, dup := codecRegistry.audio[c.Name()]; dup {
		panic(fmt.Sprintf("codec: duplicate audio codec %q", c.Name()))
	}
	codecRegistry.audio[c.Name()] = c
	return c
}

// LookupVideoCodec returns the registered video codec with the given name.
func LookupVideoCodec(name string) (VideoCodec, bool) {
	codecRegistry.RLock()
	defer codecRegistry.RUnlock()
	c, ok := codecRegistry.video[name]
	return c, ok
}

// LookupAudioCodec returns the registered audio codec with the given name.
func LookupAudioCodec(name string) (AudioCodec, bool) {
	codecRegistry.RLock()
	defer codecRegistry.RUnlock()
	c, ok := codecRegistry.audio[name]
	return c, ok
}

// VideoCodecs returns the names of all registered video codecs, sorted.
func VideoCodecs() []string {
	codecRegistry.RLock()
	defer codecRegistry.RUnlock()
	names := make([]string, 0, len(codecRegistry.video))
	for n := range codecRegistry.video {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// EncodedFrame is one element of an encoded video value.
type EncodedFrame struct {
	Data []byte
	Key  bool // independently decodable
}

// ElementKind reports media.KindVideo.
func (f *EncodedFrame) ElementKind() media.Kind { return media.KindVideo }

// Size reports the encoded frame's byte size.
func (f *EncodedFrame) Size() int64 { return int64(len(f.Data)) }

// EncodedVideo is a compressed video representation.  It implements
// media.Value so encoded values can be stored, bound to activities and
// streamed like raw values; its elements are EncodedFrames.
type EncodedVideo struct {
	typ                  *media.Type
	codec                string
	width, height, depth int
	quant                int // codec quantization parameter at encode time
	gop                  int // key-frame period (1 for intra codecs)
	layers               int // layer count for scalable encodings (0 otherwise)
	frames               []*EncodedFrame
	tr                   avtime.Transform
}

var _ media.Value = (*EncodedVideo)(nil)

func newEncodedVideo(typ *media.Type, codecName string, w, h, depth, quant, gop, layers int) *EncodedVideo {
	return &EncodedVideo{
		typ: typ, codec: codecName,
		width: w, height: h, depth: depth,
		quant: quant, gop: gop, layers: layers,
		tr: avtime.NewTransform(typ.Rate),
	}
}

// Codec reports the name of the codec that produced this value.
func (e *EncodedVideo) Codec() string { return e.codec }

// Width reports the encoded frame width in pixels.
func (e *EncodedVideo) Width() int { return e.width }

// Height reports the encoded frame height in pixels.
func (e *EncodedVideo) Height() int { return e.height }

// Depth reports the bits per pixel of the decoded frames.
func (e *EncodedVideo) Depth() int { return e.depth }

// Layers reports the number of encoded layers (scalable codec only).
func (e *EncodedVideo) Layers() int { return e.layers }

// GOP reports the key-frame period.
func (e *EncodedVideo) GOP() int { return e.gop }

// Type implements media.Value.
func (e *EncodedVideo) Type() *media.Type { return e.typ }

// NumElements implements media.Value.
func (e *EncodedVideo) NumElements() int { return len(e.frames) }

// NumFrames reports the frame count.
func (e *EncodedVideo) NumFrames() int { return len(e.frames) }

// Start implements media.Value.
func (e *EncodedVideo) Start() avtime.WorldTime { return e.tr.Translate }

// Duration implements media.Value.
func (e *EncodedVideo) Duration() avtime.WorldTime {
	return e.tr.DurationOf(avtime.ObjectTime(len(e.frames)))
}

// Interval implements media.Value.
func (e *EncodedVideo) Interval() avtime.Interval {
	return avtime.Interval{Start: e.Start(), Dur: e.Duration()}
}

// WorldToObject implements media.Value.
func (e *EncodedVideo) WorldToObject(w avtime.WorldTime) avtime.ObjectTime {
	return e.tr.WorldToObject(w)
}

// ObjectToWorld implements media.Value.
func (e *EncodedVideo) ObjectToWorld(o avtime.ObjectTime) avtime.WorldTime {
	return e.tr.ObjectToWorld(o)
}

// Scale implements media.Value.
func (e *EncodedVideo) Scale(f float64) {
	if f <= 0 {
		panic("codec: Scale factor must be positive")
	}
	e.tr = e.tr.Scaled(f)
}

// Translate implements media.Value.
func (e *EncodedVideo) Translate(dw avtime.WorldTime) { e.tr = e.tr.Translated(dw) }

// Element implements media.Value.
func (e *EncodedVideo) Element(w avtime.WorldTime) (media.Element, error) {
	return e.ElementAt(e.tr.WorldToObject(w))
}

// ElementAt implements media.Value.
func (e *EncodedVideo) ElementAt(o avtime.ObjectTime) (media.Element, error) {
	if o < 0 || int(o) >= len(e.frames) {
		return nil, fmt.Errorf("%w: encoded frame %d of %d", media.ErrOutOfRange, o, len(e.frames))
	}
	return e.frames[o], nil
}

// FrameData returns the encoded payload of frame i.
func (e *EncodedVideo) FrameData(i int) (*EncodedFrame, error) {
	if i < 0 || i >= len(e.frames) {
		return nil, fmt.Errorf("%w: encoded frame %d of %d", media.ErrOutOfRange, i, len(e.frames))
	}
	return e.frames[i], nil
}

// KeyFrameBefore reports the index of the nearest key frame at or before i.
func (e *EncodedVideo) KeyFrameBefore(i int) (int, error) {
	if i < 0 || i >= len(e.frames) {
		return 0, fmt.Errorf("%w: encoded frame %d of %d", media.ErrOutOfRange, i, len(e.frames))
	}
	for k := i; k >= 0; k-- {
		if e.frames[k].Key {
			return k, nil
		}
	}
	return 0, fmt.Errorf("codec: no key frame at or before %d", i)
}

// Size implements media.Value: total encoded bytes.
func (e *EncodedVideo) Size() int64 {
	var n int64
	for _, f := range e.frames {
		n += f.Size()
	}
	return n
}

// RawSize reports the size the value would occupy uncompressed.
func (e *EncodedVideo) RawSize() int64 {
	return int64(e.width) * int64(e.height) * int64(e.depth) / 8 * int64(len(e.frames))
}

// CompressionRatio reports raw size over encoded size.
func (e *EncodedVideo) CompressionRatio() float64 {
	s := e.Size()
	if s == 0 {
		return 0
	}
	return float64(e.RawSize()) / float64(s)
}

// String describes the encoded value.
func (e *EncodedVideo) String() string {
	return fmt.Sprintf("%s %dx%dx%d, %d frames, %.1f:1", e.typ.Name, e.width, e.height, e.depth, len(e.frames), e.CompressionRatio())
}

// EncodedAudio is a compressed audio representation.
type EncodedAudio struct {
	typ      *media.Type
	codec    string
	channels int
	samples  int // decoded sample-frame count
	data     []byte
	tr       avtime.Transform
}

var _ media.Value = (*EncodedAudio)(nil)

// Codec reports the producing codec's name.
func (e *EncodedAudio) Codec() string { return e.codec }

// Channels reports the decoded channel count.
func (e *EncodedAudio) Channels() int { return e.channels }

// Data returns the raw encoded byte stream.
func (e *EncodedAudio) Data() []byte { return e.data }

// Type implements media.Value.
func (e *EncodedAudio) Type() *media.Type { return e.typ }

// NumElements implements media.Value: the decoded sample-frame count.
func (e *EncodedAudio) NumElements() int { return e.samples }

// Start implements media.Value.
func (e *EncodedAudio) Start() avtime.WorldTime { return e.tr.Translate }

// Duration implements media.Value.
func (e *EncodedAudio) Duration() avtime.WorldTime {
	return e.tr.DurationOf(avtime.ObjectTime(e.samples))
}

// Interval implements media.Value.
func (e *EncodedAudio) Interval() avtime.Interval {
	return avtime.Interval{Start: e.Start(), Dur: e.Duration()}
}

// WorldToObject implements media.Value.
func (e *EncodedAudio) WorldToObject(w avtime.WorldTime) avtime.ObjectTime {
	return e.tr.WorldToObject(w)
}

// ObjectToWorld implements media.Value.
func (e *EncodedAudio) ObjectToWorld(o avtime.ObjectTime) avtime.WorldTime {
	return e.tr.ObjectToWorld(o)
}

// Scale implements media.Value.
func (e *EncodedAudio) Scale(f float64) {
	if f <= 0 {
		panic("codec: Scale factor must be positive")
	}
	e.tr = e.tr.Scaled(f)
}

// Translate implements media.Value.
func (e *EncodedAudio) Translate(dw avtime.WorldTime) { e.tr = e.tr.Translated(dw) }

// encodedAudioChunk is the element type of encoded audio: a byte window.
type encodedAudioChunk []byte

func (c encodedAudioChunk) ElementKind() media.Kind { return media.KindAudio }
func (c encodedAudioChunk) Size() int64             { return int64(len(c)) }

// Element implements media.Value.  Encoded audio is not element-address-
// able mid-stream in general; the element is the whole encoded payload.
func (e *EncodedAudio) Element(avtime.WorldTime) (media.Element, error) {
	return encodedAudioChunk(e.data), nil
}

// ElementAt implements media.Value.
func (e *EncodedAudio) ElementAt(o avtime.ObjectTime) (media.Element, error) {
	if o != 0 {
		return nil, fmt.Errorf("%w: encoded audio element %d", media.ErrOutOfRange, o)
	}
	return encodedAudioChunk(e.data), nil
}

// Size implements media.Value.
func (e *EncodedAudio) Size() int64 { return int64(len(e.data)) }

// RawSize reports the decoded PCM size in bytes.
func (e *EncodedAudio) RawSize() int64 { return int64(e.samples) * int64(e.channels) * 2 }

// CompressionRatio reports raw size over encoded size.
func (e *EncodedAudio) CompressionRatio() float64 {
	if len(e.data) == 0 {
		return 0
	}
	return float64(e.RawSize()) / float64(len(e.data))
}

// String describes the encoded audio value.
func (e *EncodedAudio) String() string {
	return fmt.Sprintf("%s %dch, %d samples, %.1f:1", e.typ.Name, e.channels, e.samples, e.CompressionRatio())
}
