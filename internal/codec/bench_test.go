package codec

import (
	"testing"

	"avdb/internal/media"
)

func benchVideo(b *testing.B, frames int) *media.VideoValue {
	b.Helper()
	v := media.NewVideoValue(media.TypeRawVideo30, 160, 120, 8)
	for i := 0; i < frames; i++ {
		f := media.NewFrame(160, 120, 8)
		for y := 0; y < 120; y++ {
			for x := 0; x < 160; x++ {
				f.Set(x, y, byte(x+y+i))
			}
		}
		if err := v.AppendFrame(f); err != nil {
			b.Fatal(err)
		}
	}
	return v
}

func BenchmarkIntraEncode(b *testing.B) {
	v := benchVideo(b, 30)
	b.SetBytes(v.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := JPEG.Encode(v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIntraDecode(b *testing.B) {
	v := benchVideo(b, 30)
	e, err := JPEG.Encode(v)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(v.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := JPEG.Decode(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterEncode(b *testing.B) {
	v := benchVideo(b, 30)
	b.SetBytes(v.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MPEG.Encode(v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterDecodeSequential(b *testing.B) {
	v := benchVideo(b, 30)
	e, err := MPEG.Encode(v)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(v.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MPEG.Decode(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterRandomAccessFrame(b *testing.B) {
	v := benchVideo(b, 30)
	e, err := MPEG.Encode(v)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Worst case: the frame just before the next key frame.
		if _, err := MPEG.DecodeFrame(e, 14); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIntraRandomAccessFrame(b *testing.B) {
	v := benchVideo(b, 30)
	e, err := JPEG.Encode(v)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := JPEG.DecodeFrame(e, 14); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScalableEncode(b *testing.B) {
	v := benchVideo(b, 30)
	b.SetBytes(v.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ScalableCodec.Encode(v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScalableDropLayers(b *testing.B) {
	v := benchVideo(b, 30)
	e, err := ScalableCodec.Encode(v)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DropLayers(e, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func benchAudio(b *testing.B) *media.AudioValue {
	b.Helper()
	a := media.NewAudioValue(media.TypeCDAudio, 2)
	samples := make([]int16, 44100*2)
	for i := range samples {
		samples[i] = int16((i * 37) % 16384)
	}
	if err := a.AppendSamples(samples); err != nil {
		b.Fatal(err)
	}
	return a
}

func BenchmarkMuLawEncode(b *testing.B) {
	a := benchAudio(b)
	b.SetBytes(a.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MuLawCodec.Encode(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkADPCMEncode(b *testing.B) {
	a := benchAudio(b)
	b.SetBytes(a.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ADPCMCodec.Encode(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkADPCMDecode(b *testing.B) {
	a := benchAudio(b)
	e, err := ADPCMCodec.Encode(a)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(a.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ADPCMCodec.Decode(e); err != nil {
			b.Fatal(err)
		}
	}
}
