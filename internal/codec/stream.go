package codec

import (
	"fmt"

	"avdb/internal/media"
)

// VideoStreamEncoder compresses frames one at a time, the form a video
// encoder activity needs: state (the inter-frame reference) lives in the
// encoder, and each call yields one EncodedFrame.
type VideoStreamEncoder struct {
	quant, gop           int
	width, height, depth int // learned from the first frame
	count                int
	ref                  []byte // quantized previous frame (inter mode)
}

// NewIntraStreamEncoder returns a streaming intra-frame (JPEG-style)
// encoder.
func NewIntraStreamEncoder(quant int) (*VideoStreamEncoder, error) {
	if err := checkQuant(quant); err != nil {
		return nil, err
	}
	return &VideoStreamEncoder{quant: quant, gop: 1}, nil
}

// NewInterStreamEncoder returns a streaming inter-frame (MPEG-style)
// encoder with the given key-frame period.
func NewInterStreamEncoder(quant, gop int) (*VideoStreamEncoder, error) {
	if err := checkQuant(quant); err != nil {
		return nil, err
	}
	if gop < 1 {
		return nil, fmt.Errorf("codec: GOP %d must be >= 1", gop)
	}
	return &VideoStreamEncoder{quant: quant, gop: gop}, nil
}

// Quant reports the encoder's quantization parameter.
func (e *VideoStreamEncoder) Quant() int { return e.quant }

// GOP reports the key-frame period.
func (e *VideoStreamEncoder) GOP() int { return e.gop }

// EncodeFrame compresses one frame.  All frames of a stream must share
// one geometry.
func (e *VideoStreamEncoder) EncodeFrame(f *media.Frame) (*EncodedFrame, error) {
	if e.count == 0 {
		e.width, e.height, e.depth = f.Width, f.Height, f.Depth
	} else if f.Width != e.width || f.Height != e.height || f.Depth != e.depth {
		return nil, fmt.Errorf("codec: frame geometry changed mid-stream: %dx%dx%d -> %dx%dx%d",
			e.width, e.height, e.depth, f.Width, f.Height, f.Depth)
	}
	t := quantize(f.Pix, e.quant)
	var out *EncodedFrame
	if e.count%e.gop == 0 {
		out = &EncodedFrame{Data: deltaRLE(t), Key: true}
	} else {
		resid := make([]byte, len(t))
		for k := range t {
			resid[k] = t[k] - e.ref[k]
		}
		out = &EncodedFrame{Data: rleEncode(make([]byte, 0, 64), resid)}
	}
	e.ref = t
	e.count++
	return out, nil
}

// Reset returns the encoder to its initial state (the next frame is a
// key frame and may have new geometry).
func (e *VideoStreamEncoder) Reset() {
	e.count = 0
	e.ref = nil
}

// VideoStreamDecoder reconstructs frames from a stream of EncodedFrames
// produced by a VideoStreamEncoder with the same parameters.
type VideoStreamDecoder struct {
	quant                int
	width, height, depth int
	ref                  []byte
}

// NewVideoStreamDecoder returns a decoder for streams of the given
// geometry and quantization.
func NewVideoStreamDecoder(width, height, depth, quant int) (*VideoStreamDecoder, error) {
	if err := checkQuant(quant); err != nil {
		return nil, err
	}
	if width <= 0 || height <= 0 || depth <= 0 || depth%8 != 0 {
		return nil, fmt.Errorf("codec: invalid decoder geometry %dx%dx%d", width, height, depth)
	}
	return &VideoStreamDecoder{quant: quant, width: width, height: height, depth: depth}, nil
}

// DecodeFrame reconstructs one frame.  A non-key frame before any key
// frame is an error.
func (d *VideoStreamDecoder) DecodeFrame(ef *EncodedFrame) (*media.Frame, error) {
	n := d.width * d.height * d.depth / 8
	var t []byte
	if ef.Key {
		var err error
		t, err = undeltaRLE(ef.Data, n)
		if err != nil {
			return nil, err
		}
	} else {
		if d.ref == nil {
			return nil, fmt.Errorf("codec: predicted frame received before any key frame")
		}
		resid, err := rleDecode(make([]byte, 0, n), ef.Data)
		if err != nil {
			return nil, err
		}
		if len(resid) != n {
			return nil, fmt.Errorf("codec: predicted frame decoded to %d bytes, want %d", len(resid), n)
		}
		t = make([]byte, n)
		for k := range t {
			t[k] = d.ref[k] + resid[k]
		}
	}
	d.ref = t
	f := media.NewFrame(d.width, d.height, d.depth)
	dequantizeInto(f.Pix, t, d.quant)
	return f, nil
}

// Reset drops the reference frame.
func (d *VideoStreamDecoder) Reset() { d.ref = nil }
