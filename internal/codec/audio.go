package codec

import (
	"encoding/binary"
	"fmt"

	"avdb/internal/avtime"
	"avdb/internal/media"
)

// MuLaw is the µ-law companding audio codec (G.711): 16-bit linear PCM to
// 8 bits per sample, 2:1.  Lossy with logarithmic quantization error.
type MuLaw struct{}

// MuLawCodec is the registered µ-law codec.
var MuLawCodec = RegisterAudioCodec(MuLaw{})

// Name implements AudioCodec.
func (MuLaw) Name() string { return "mulaw" }

// EncodedType implements AudioCodec.
func (MuLaw) EncodedType() *media.Type { return TypeMuLawAudio }

// Encode implements AudioCodec.
func (MuLaw) Encode(a *media.AudioValue) (*EncodedAudio, error) {
	n := a.NumSamples()
	src, err := a.Samples(0, n)
	if err != nil {
		return nil, err
	}
	data := make([]byte, len(src))
	for i, s := range src {
		data[i] = muLawEncode(s)
	}
	return &EncodedAudio{
		typ: TypeMuLawAudio, codec: "mulaw",
		channels: a.Channels(), samples: n, data: data,
		tr: avtime.NewTransform(a.Type().Rate),
	}, nil
}

// Decode implements AudioCodec.
func (MuLaw) Decode(e *EncodedAudio) (*media.AudioValue, error) {
	rawType, err := rawAudioTypeFor(e.tr.Rate)
	if err != nil {
		return nil, err
	}
	a := media.NewAudioValue(rawType, e.channels)
	samples := make([]int16, len(e.data))
	for i, b := range e.data {
		samples[i] = muLawDecode(b)
	}
	if err := a.AppendSamples(samples); err != nil {
		return nil, err
	}
	return a, nil
}

const muLawBias = 0x84

// muLawEncode compands one 16-bit sample to 8 bits (G.711 µ-law).
func muLawEncode(s int16) byte {
	sign := byte(0)
	v := int32(s)
	if v < 0 {
		v = -v
		sign = 0x80
	}
	if v > 32635 {
		v = 32635
	}
	v += muLawBias
	exp := byte(7)
	for mask := int32(0x4000); mask != 0 && v&mask == 0; mask >>= 1 {
		exp--
	}
	mantissa := byte((v >> (int32(exp) + 3)) & 0x0F)
	return ^(sign | exp<<4 | mantissa)
}

// muLawDecode expands one µ-law byte to a 16-bit sample.
func muLawDecode(b byte) int16 {
	b = ^b
	sign := b & 0x80
	exp := (b >> 4) & 0x07
	mantissa := b & 0x0F
	v := ((int32(mantissa) << 3) + muLawBias) << exp
	v -= muLawBias
	if sign != 0 {
		v = -v
	}
	return int16(v)
}

// ADPCM is the IMA ADPCM audio codec: 4 bits per sample, 4:1 over 16-bit
// PCM.  Per-channel predictor state is carried in an 8-byte header per
// channel (initial predictor and step index).
type ADPCM struct{}

// ADPCMCodec is the registered IMA ADPCM codec.
var ADPCMCodec = RegisterAudioCodec(ADPCM{})

// Name implements AudioCodec.
func (ADPCM) Name() string { return "adpcm-sim" }

// EncodedType implements AudioCodec.
func (ADPCM) EncodedType() *media.Type { return TypeADPCMAudio }

var imaIndexTable = [16]int{-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8}

var imaStepTable = [89]int32{
	7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
	19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
	50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
	130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
	337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
	876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
	2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
	5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
	15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
}

type imaState struct {
	pred  int32
	index int
}

func (st *imaState) encodeSample(s int16) byte {
	step := imaStepTable[st.index]
	diff := int32(s) - st.pred
	var nibble byte
	if diff < 0 {
		nibble = 8
		diff = -diff
	}
	var delta int32
	if diff >= step {
		nibble |= 4
		diff -= step
		delta += step
	}
	if diff >= step>>1 {
		nibble |= 2
		diff -= step >> 1
		delta += step >> 1
	}
	if diff >= step>>2 {
		nibble |= 1
		delta += step >> 2
	}
	delta += step >> 3
	if nibble&8 != 0 {
		st.pred -= delta
	} else {
		st.pred += delta
	}
	st.pred = clamp16(st.pred)
	st.index += imaIndexTable[nibble]
	st.index = clampIndex(st.index)
	return nibble
}

func (st *imaState) decodeSample(nibble byte) int16 {
	step := imaStepTable[st.index]
	delta := step >> 3
	if nibble&4 != 0 {
		delta += step
	}
	if nibble&2 != 0 {
		delta += step >> 1
	}
	if nibble&1 != 0 {
		delta += step >> 2
	}
	if nibble&8 != 0 {
		st.pred -= delta
	} else {
		st.pred += delta
	}
	st.pred = clamp16(st.pred)
	st.index += imaIndexTable[nibble]
	st.index = clampIndex(st.index)
	return int16(st.pred)
}

func clamp16(v int32) int32 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return v
}

func clampIndex(i int) int {
	if i < 0 {
		return 0
	}
	if i > 88 {
		return 88
	}
	return i
}

// Encode implements AudioCodec.  The payload is, per channel, a 4-byte
// header (initial predictor, step index) followed by the packed nibbles
// of all channels interleaved two samples per byte per channel.
func (ADPCM) Encode(a *media.AudioValue) (*EncodedAudio, error) {
	n, ch := a.NumSamples(), a.Channels()
	src, err := a.Samples(0, n)
	if err != nil {
		return nil, err
	}
	states := make([]imaState, ch)
	// Seed each channel's predictor with its first sample for fast
	// convergence.
	for c := 0; c < ch; c++ {
		if n > 0 {
			states[c].pred = int32(src[c])
		}
	}
	data := make([]byte, 0, 4*ch+(n*ch+1)/2)
	for c := 0; c < ch; c++ {
		var hdr [4]byte
		binary.BigEndian.PutUint16(hdr[0:2], uint16(states[c].pred))
		hdr[2] = byte(states[c].index)
		data = append(data, hdr[:]...)
	}
	var cur byte
	half := false
	for i := 0; i < n; i++ {
		for c := 0; c < ch; c++ {
			nib := states[c].encodeSample(src[i*ch+c])
			if !half {
				cur = nib << 4
				half = true
			} else {
				data = append(data, cur|nib)
				half = false
			}
		}
	}
	if half {
		data = append(data, cur)
	}
	return &EncodedAudio{
		typ: TypeADPCMAudio, codec: "adpcm-sim",
		channels: ch, samples: n, data: data,
		tr: avtime.NewTransform(a.Type().Rate),
	}, nil
}

// Decode implements AudioCodec.
func (ADPCM) Decode(e *EncodedAudio) (*media.AudioValue, error) {
	rawType, err := rawAudioTypeFor(e.tr.Rate)
	if err != nil {
		return nil, err
	}
	ch := e.channels
	if len(e.data) < 4*ch {
		return nil, fmt.Errorf("codec: ADPCM payload shorter than %d channel headers", ch)
	}
	states := make([]imaState, ch)
	for c := 0; c < ch; c++ {
		hdr := e.data[c*4 : c*4+4]
		states[c].pred = int32(int16(binary.BigEndian.Uint16(hdr[0:2])))
		states[c].index = clampIndex(int(hdr[2]))
	}
	body := e.data[4*ch:]
	total := e.samples * ch
	if (total+1)/2 > len(body) {
		return nil, fmt.Errorf("codec: ADPCM payload holds %d nibbles, need %d", len(body)*2, total)
	}
	samples := make([]int16, total)
	for i := 0; i < total; i++ {
		var nib byte
		if i%2 == 0 {
			nib = body[i/2] >> 4
		} else {
			nib = body[i/2] & 0x0F
		}
		samples[i] = states[i%ch].decodeSample(nib)
	}
	a := media.NewAudioValue(rawType, ch)
	if err := a.AppendSamples(samples); err != nil {
		return nil, err
	}
	return a, nil
}

// rawAudioTypeFor maps a sample rate back to the raw PCM media data type
// a decoder should produce.
func rawAudioTypeFor(r avtime.Rate) (*media.Type, error) {
	switch {
	case r.Equal(avtime.RateCDAudio):
		return media.TypeCDAudio, nil
	case r.Equal(avtime.RateFMAudio):
		return media.TypeFMAudio, nil
	case r.Equal(avtime.RateVoice):
		return media.TypeVoiceAudio, nil
	}
	return nil, fmt.Errorf("codec: no raw PCM type at rate %v", r)
}
