package codec

import (
	"fmt"

	"avdb/internal/avtime"
	"avdb/internal/media"
)

// Inter is an inter-frame video codec in the MPEG mold: every GOP-th frame
// is an independently decodable key (I) frame coded like the intra codec;
// the frames between are predicted (P) frames holding only the quantized
// difference against the previous reconstructed frame.  Static or slowly
// changing video therefore compresses far better than with the intra
// codec, at the cost of random access: decoding frame i requires decoding
// forward from the nearest key frame at or before i.
//
// Prediction operates in the quantized domain, so the encoder's reference
// frame is bit-identical to the decoder's and there is no drift.
type Inter struct {
	Quant int // bits of precision dropped, 0..7
	GOPN  int // key-frame period, >= 1
}

// MPEG is the registered inter-frame codec ("MPEG-Videovalue").
var MPEG = RegisterVideoCodec(&Inter{Quant: 2, GOPN: 15})

// Name implements VideoCodec.
func (c *Inter) Name() string { return "mpeg-sim" }

// EncodedType implements VideoCodec.
func (c *Inter) EncodedType() *media.Type { return TypeMPEGVideo }

// Encode implements VideoCodec.
func (c *Inter) Encode(v *media.VideoValue) (*EncodedVideo, error) {
	if err := checkQuant(c.Quant); err != nil {
		return nil, err
	}
	gop := c.GOPN
	if gop < 1 {
		return nil, fmt.Errorf("codec: GOP %d must be >= 1", gop)
	}
	e := newEncodedVideo(TypeMPEGVideo, c.Name(), v.Width(), v.Height(), v.Depth(), c.Quant, gop, 0)
	e.tr = avtime.NewTransform(v.Type().Rate)

	var ref []byte // previous frame in the quantized domain
	for i := 0; i < v.NumFrames(); i++ {
		f, err := v.Frame(i)
		if err != nil {
			return nil, err
		}
		t := quantize(f.Pix, c.Quant)
		if i%gop == 0 {
			e.frames = append(e.frames, &EncodedFrame{Data: deltaRLE(t), Key: true})
		} else {
			resid := make([]byte, len(t))
			for k := range t {
				resid[k] = t[k] - ref[k]
			}
			e.frames = append(e.frames, &EncodedFrame{Data: rleEncode(make([]byte, 0, 64), resid), Key: false})
		}
		ref = t
	}
	return e, nil
}

// Decode implements VideoCodec.
func (c *Inter) Decode(e *EncodedVideo) (*media.VideoValue, error) {
	v := media.NewVideoValue(media.TypeRawVideo30, e.width, e.height, e.depth)
	var ref []byte
	for i := range e.frames {
		t, err := decodeInterQuantized(e, i, ref)
		if err != nil {
			return nil, err
		}
		f := media.NewFrame(e.width, e.height, e.depth)
		dequantizeInto(f.Pix, t, e.quant)
		if err := v.AppendFrame(f); err != nil {
			return nil, err
		}
		ref = t
	}
	return v, nil
}

// DecodeFrame implements VideoCodec, decoding forward from the nearest
// key frame at or before i.
func (c *Inter) DecodeFrame(e *EncodedVideo, i int) (*media.Frame, error) {
	key, err := e.KeyFrameBefore(i)
	if err != nil {
		return nil, err
	}
	var ref []byte
	for k := key; ; k++ {
		t, err := decodeInterQuantized(e, k, ref)
		if err != nil {
			return nil, err
		}
		if k == i {
			f := media.NewFrame(e.width, e.height, e.depth)
			dequantizeInto(f.Pix, t, e.quant)
			return f, nil
		}
		ref = t
	}
}

// decodeInterQuantized reconstructs frame i in the quantized domain given
// the previous reconstructed frame (nil for key frames).
func decodeInterQuantized(e *EncodedVideo, i int, ref []byte) ([]byte, error) {
	ef, err := e.FrameData(i)
	if err != nil {
		return nil, err
	}
	n := e.width * e.height * e.depth / 8
	if ef.Key {
		t, err := undeltaRLE(ef.Data, n)
		if err != nil {
			return nil, fmt.Errorf("codec: key frame %d: %w", i, err)
		}
		return t, nil
	}
	if ref == nil {
		return nil, fmt.Errorf("codec: P frame %d decoded without reference", i)
	}
	resid, err := rleDecode(make([]byte, 0, n), ef.Data)
	if err != nil {
		return nil, fmt.Errorf("codec: P frame %d: %w", i, err)
	}
	if len(resid) != n {
		return nil, fmt.Errorf("codec: P frame %d: decoded %d bytes, want %d", i, len(resid), n)
	}
	t := make([]byte, n)
	for k := range t {
		t[k] = ref[k] + resid[k]
	}
	return t, nil
}

// quantize drops q low bits from every byte.
func quantize(pix []byte, q int) []byte {
	t := make([]byte, len(pix))
	for i, p := range pix {
		t[i] = p >> q
	}
	return t
}

// dequantizeInto restores pixel bytes from the quantized domain with
// midpoint reconstruction.
func dequantizeInto(pix, t []byte, q int) {
	mid := byte(0)
	if q > 0 {
		mid = 1 << (q - 1)
	}
	for i, tv := range t {
		pix[i] = tv<<q + mid
	}
}

// deltaRLE codes an already-quantized frame with the intra predictor.
func deltaRLE(t []byte) []byte {
	d := make([]byte, len(t))
	var prev byte
	for i, tv := range t {
		d[i] = tv - prev
		prev = tv
	}
	return rleEncode(make([]byte, 0, len(t)/4+16), d)
}

// undeltaRLE reverses deltaRLE, returning the quantized-domain frame.
func undeltaRLE(data []byte, n int) ([]byte, error) {
	d, err := rleDecode(make([]byte, 0, n), data)
	if err != nil {
		return nil, err
	}
	if len(d) != n {
		return nil, fmt.Errorf("codec: decoded %d bytes, want %d", len(d), n)
	}
	t := make([]byte, n)
	var prev byte
	for i, dv := range d {
		prev += dv
		t[i] = prev
	}
	return t, nil
}
