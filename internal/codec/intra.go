package codec

import (
	"fmt"

	"avdb/internal/avtime"
	"avdb/internal/media"
)

// Intra is an intra-frame video codec in the JPEG mold: every frame is
// independently decodable.  Each frame is quantized (Quant low bits
// dropped), predictively transformed (delta against the previous byte) and
// run-length coded.  Quant 0 is lossless; Quant q bounds the per-byte
// reconstruction error by 2^(q-1).
type Intra struct {
	CodecName string
	Typ       *media.Type
	Quant     int // bits of precision dropped, 0..7
}

// JPEG is the default intra-frame codec ("JPEG-Videovalue").
var JPEG = RegisterVideoCodec(&Intra{CodecName: "jpeg-sim", Typ: TypeJPEGVideo, Quant: 2})

// Name implements VideoCodec.
func (c *Intra) Name() string { return c.CodecName }

// EncodedType implements VideoCodec.
func (c *Intra) EncodedType() *media.Type { return c.Typ }

// Encode implements VideoCodec.
func (c *Intra) Encode(v *media.VideoValue) (*EncodedVideo, error) {
	if err := checkQuant(c.Quant); err != nil {
		return nil, err
	}
	e := newEncodedVideo(c.Typ, c.CodecName, v.Width(), v.Height(), v.Depth(), c.Quant, 1, 0)
	e.tr = avtime.NewTransform(v.Type().Rate)
	for i := 0; i < v.NumFrames(); i++ {
		f, err := v.Frame(i)
		if err != nil {
			return nil, err
		}
		e.frames = append(e.frames, &EncodedFrame{Data: encodeIntraFrame(f.Pix, c.Quant), Key: true})
	}
	return e, nil
}

// Decode implements VideoCodec.
func (c *Intra) Decode(e *EncodedVideo) (*media.VideoValue, error) {
	v := media.NewVideoValue(media.TypeRawVideo30, e.width, e.height, e.depth)
	for i := range e.frames {
		f, err := c.DecodeFrame(e, i)
		if err != nil {
			return nil, err
		}
		if err := v.AppendFrame(f); err != nil {
			return nil, err
		}
	}
	return v, nil
}

// DecodeFrame implements VideoCodec.  Intra frames decode independently.
func (c *Intra) DecodeFrame(e *EncodedVideo, i int) (*media.Frame, error) {
	ef, err := e.FrameData(i)
	if err != nil {
		return nil, err
	}
	f := media.NewFrame(e.width, e.height, e.depth)
	if err := decodeIntraFrame(f.Pix, ef.Data, e.quant); err != nil {
		return nil, fmt.Errorf("codec: frame %d: %w", i, err)
	}
	return f, nil
}

func checkQuant(q int) error {
	if q < 0 || q > 7 {
		return fmt.Errorf("codec: quantization %d outside 0..7", q)
	}
	return nil
}

// encodeIntraFrame quantizes, delta-transforms and run-length codes one
// frame's pixel bytes.
func encodeIntraFrame(pix []byte, q int) []byte {
	d := make([]byte, len(pix))
	var prev byte
	for i, p := range pix {
		t := p >> q
		d[i] = t - prev
		prev = t
	}
	return rleEncode(make([]byte, 0, len(pix)/4+16), d)
}

// decodeIntraFrame reverses encodeIntraFrame into pix, which must have the
// frame's exact length.
func decodeIntraFrame(pix, data []byte, q int) error {
	d, err := rleDecode(make([]byte, 0, len(pix)), data)
	if err != nil {
		return err
	}
	if len(d) != len(pix) {
		return fmt.Errorf("codec: decoded %d bytes, frame needs %d", len(d), len(pix))
	}
	var t byte
	mid := byte(0)
	if q > 0 {
		mid = 1 << (q - 1)
	}
	for i, dv := range d {
		t += dv
		pix[i] = t<<q + mid
	}
	return nil
}

// DVI is a coarse intra-frame production codec ("DVI-Videovalue"): frames
// are 2×2 box-downsampled before intra coding and nearest-neighbor
// upsampled on decode.  It compresses roughly 4× harder than the JPEG
// codec at correspondingly lower quality, standing in for DVI's
// production-level video mode.
type DVI struct {
	Quant int
}

// DVICodec is the registered DVI-style codec.
var DVICodec = RegisterVideoCodec(&DVI{Quant: 2})

// Name implements VideoCodec.
func (c *DVI) Name() string { return "dvi-sim" }

// EncodedType implements VideoCodec.
func (c *DVI) EncodedType() *media.Type { return TypeDVIVideo }

// Encode implements VideoCodec.
func (c *DVI) Encode(v *media.VideoValue) (*EncodedVideo, error) {
	if err := checkQuant(c.Quant); err != nil {
		return nil, err
	}
	e := newEncodedVideo(TypeDVIVideo, c.Name(), v.Width(), v.Height(), v.Depth(), c.Quant, 1, 0)
	e.tr = avtime.NewTransform(v.Type().Rate)
	bpp := v.Depth() / 8
	for i := 0; i < v.NumFrames(); i++ {
		f, err := v.Frame(i)
		if err != nil {
			return nil, err
		}
		small := downsample2(f.Pix, v.Width(), v.Height(), bpp)
		e.frames = append(e.frames, &EncodedFrame{Data: encodeIntraFrame(small, c.Quant), Key: true})
	}
	return e, nil
}

// Decode implements VideoCodec.
func (c *DVI) Decode(e *EncodedVideo) (*media.VideoValue, error) {
	v := media.NewVideoValue(media.TypeRawVideo30, e.width, e.height, e.depth)
	for i := range e.frames {
		f, err := c.DecodeFrame(e, i)
		if err != nil {
			return nil, err
		}
		if err := v.AppendFrame(f); err != nil {
			return nil, err
		}
	}
	return v, nil
}

// DecodeFrame implements VideoCodec.
func (c *DVI) DecodeFrame(e *EncodedVideo, i int) (*media.Frame, error) {
	ef, err := e.FrameData(i)
	if err != nil {
		return nil, err
	}
	bpp := e.depth / 8
	sw, sh := (e.width+1)/2, (e.height+1)/2
	small := make([]byte, sw*sh*bpp)
	if err := decodeIntraFrame(small, ef.Data, e.quant); err != nil {
		return nil, fmt.Errorf("codec: frame %d: %w", i, err)
	}
	f := media.NewFrame(e.width, e.height, e.depth)
	upsample2(f.Pix, small, e.width, e.height, bpp)
	return f, nil
}

// downsample2 box-filters pix (w×h, bpp bytes per pixel) by 2 in each
// dimension, returning the ceil(w/2)×ceil(h/2) result.
func downsample2(pix []byte, w, h, bpp int) []byte {
	sw, sh := (w+1)/2, (h+1)/2
	out := make([]byte, sw*sh*bpp)
	for sy := 0; sy < sh; sy++ {
		for sx := 0; sx < sw; sx++ {
			for b := 0; b < bpp; b++ {
				var sum, n int
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						x, y := sx*2+dx, sy*2+dy
						if x < w && y < h {
							sum += int(pix[(y*w+x)*bpp+b])
							n++
						}
					}
				}
				out[(sy*sw+sx)*bpp+b] = byte(sum / n)
			}
		}
	}
	return out
}

// upsample2 nearest-neighbor expands small (ceil(w/2)×ceil(h/2)) into pix
// (w×h).
func upsample2(pix, small []byte, w, h, bpp int) {
	sw := (w + 1) / 2
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			src := ((y/2)*sw + x/2) * bpp
			dst := (y*w + x) * bpp
			copy(pix[dst:dst+bpp], small[src:src+bpp])
		}
	}
}

// upsample2Linear bilinearly expands small (ceil(w/2)×ceil(h/2)) into pix
// (w×h).  It is the prediction filter of the scalable codec: against a
// linear interpolant the residuals of smooth content are near zero, which
// the run-length stage collapses.
func upsample2Linear(pix, small []byte, w, h, bpp int) {
	sw, sh := (w+1)/2, (h+1)/2
	sample := func(sx, sy, b int) int {
		if sx < 0 {
			sx = 0
		}
		if sx >= sw {
			sx = sw - 1
		}
		if sy < 0 {
			sy = 0
		}
		if sy >= sh {
			sy = sh - 1
		}
		return int(small[(sy*sw+sx)*bpp+b])
	}
	for y := 0; y < h; y++ {
		// Destination pixel center y+0.5 maps to source (y+0.5)/2 - 0.5 =
		// (y-0.5)/2; in fixed point quarters: fy = (2y-1) quarter-units.
		fy := 2*y - 1
		sy0 := floorDiv(fy, 4)
		ty := fy - 4*sy0 // 0..3 quarters
		for x := 0; x < w; x++ {
			fx := 2*x - 1
			sx0 := floorDiv(fx, 4)
			tx := fx - 4*sx0
			for b := 0; b < bpp; b++ {
				v00 := sample(sx0, sy0, b)
				v10 := sample(sx0+1, sy0, b)
				v01 := sample(sx0, sy0+1, b)
				v11 := sample(sx0+1, sy0+1, b)
				top := v00*(4-tx) + v10*tx
				bot := v01*(4-tx) + v11*tx
				pix[(y*w+x)*bpp+b] = byte((top*(4-ty) + bot*ty + 8) / 16)
			}
		}
	}
}

// floorDiv divides rounding toward negative infinity.
func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
