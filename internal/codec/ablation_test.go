package codec

import (
	"avdb/internal/media"
	"fmt"
	"testing"
)

// BenchmarkGOPAblation sweeps the inter codec's key-frame period: larger
// GOPs compress harder but make random access costlier — the trade-off
// behind choosing representations for editing vs archival workloads.
func BenchmarkGOPAblation(b *testing.B) {
	v := benchVideo(b, 30)
	for _, gop := range []int{1, 5, 15, 30} {
		b.Run(fmt.Sprintf("gop=%d", gop), func(b *testing.B) {
			c := &Inter{Quant: 2, GOPN: gop}
			e, err := c.Encode(v)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(e.Size()), "encoded-bytes")
			b.ReportMetric(e.CompressionRatio(), "ratio:1")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Random access to the worst-positioned frame.
				if _, err := c.DecodeFrame(e, v.NumFrames()-1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQuantAblation sweeps the intra codec's quantization: coarser
// quantization trades pixel error for compression.
func BenchmarkQuantAblation(b *testing.B) {
	v := benchVideo(b, 10)
	for _, q := range []int{0, 2, 4, 6} {
		b.Run(fmt.Sprintf("quant=%d", q), func(b *testing.B) {
			c := &Intra{CodecName: fmt.Sprintf("bench-q%d", q), Typ: TypeJPEGVideo, Quant: q}
			var size int64
			b.SetBytes(v.Size())
			for i := 0; i < b.N; i++ {
				e, err := c.Encode(v)
				if err != nil {
					b.Fatal(err)
				}
				size = e.Size()
			}
			b.ReportMetric(float64(size), "encoded-bytes")
		})
	}
}

// TestGOPAblationShape pins the qualitative claim the ablation rests on:
// compression improves monotonically with GOP while random access decode
// work grows.
func TestGOPAblationShape(t *testing.T) {
	v := smoothVideo(30, 32, 24)
	var prevSize int64 = 1 << 60
	for _, gop := range []int{1, 5, 15, 30} {
		c := &Inter{Quant: 2, GOPN: gop}
		e, err := c.Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		if e.Size() >= prevSize {
			t.Errorf("gop %d: size %d not below previous %d", gop, e.Size(), prevSize)
		}
		prevSize = e.Size()
		// Random access still decodes correctly at every GOP.
		f, err := c.DecodeFrame(e, 29)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := v.Frame(29)
		if maxErr := frameMaxErr(f, want); maxErr > 2 {
			t.Errorf("gop %d: random access error %d", gop, maxErr)
		}
	}
}

func frameMaxErr(a, b *media.Frame) int {
	var worst int
	for p := range a.Pix {
		d := int(a.Pix[p]) - int(b.Pix[p])
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}
