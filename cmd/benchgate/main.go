// Command benchgate compares two BENCH_*.json files and fails when any
// host-time metric regressed beyond a tolerance — the trajectory gate
// scripts/bench.sh runs in CI against the last committed baseline.
//
// Usage:
//
//	benchgate -old BENCH_pr5.json -new /tmp/BENCH_pr5.json [-ratio 1.10]
//
// Every numeric field whose JSON path contains "ns_per_op" is treated
// as a host-time metric (lower is better), and every field whose path
// contains "gated_ratio" as a dimensionless lower-is-better target (for
// example the scheduled-vs-demand read overhead ratio PR 7 holds under
// 2x).  Virtual-time fields are ignored: those are deterministic and
// pinned by the golden files, so drift there is a test failure, not a
// bench regression.  Metrics present in only one file are reported but
// never fail the gate, so adding a new benchmark arm does not break the
// comparison against an older baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

func main() {
	oldPath := flag.String("old", "", "baseline BENCH json (committed)")
	newPath := flag.String("new", "", "freshly measured BENCH json")
	ratio := flag.Float64("ratio", 1.10, "failure threshold: new > old*ratio regresses")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "usage: benchgate -old <baseline.json> -new <fresh.json> [-ratio 1.10]")
		os.Exit(2)
	}

	oldM, err := loadMetrics(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	newM, err := loadMetrics(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if len(oldM) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no ns_per_op or gated_ratio metrics in baseline %s\n", *oldPath)
		os.Exit(2)
	}

	paths := make([]string, 0, len(oldM))
	for p := range oldM {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	failed := false
	fmt.Printf("%-55s %14s %14s %8s\n", "metric", "old ns/op", "new ns/op", "ratio")
	for _, p := range paths {
		old := oldM[p]
		nv, ok := newM[p]
		if !ok {
			fmt.Printf("%-55s %14.0f %14s %8s\n", p, old, "missing", "-")
			continue
		}
		r := 0.0
		if old > 0 {
			r = nv / old
		}
		mark := ""
		if old > 0 && nv > old**ratio {
			mark = "  REGRESSED"
			failed = true
		}
		fmt.Printf("%-55s %14.6g %14.6g %8.3f%s\n", p, old, nv, r, mark)
	}
	for p, nv := range newM {
		if _, ok := oldM[p]; !ok {
			fmt.Printf("%-55s %14s %14.6g %8s\n", p, "(new)", nv, "-")
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchgate: host time regressed more than %.0f%% vs %s\n",
			(*ratio-1)*100, *oldPath)
		os.Exit(1)
	}
	fmt.Printf("benchgate: within %.0f%% of %s\n", (*ratio-1)*100, *oldPath)
}

// loadMetrics flattens a BENCH json into path -> value for every
// numeric field on a path mentioning ns_per_op or gated_ratio.
func loadMetrics(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]float64{}
	flatten("", doc, out)
	return out, nil
}

func flatten(prefix string, v any, out map[string]float64) {
	switch x := v.(type) {
	case map[string]any:
		for k, sub := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flatten(p, sub, out)
		}
	case float64:
		if strings.Contains(prefix, "ns_per_op") || strings.Contains(prefix, "gated_ratio") {
			out[prefix] = x
		}
	}
}
