// Command avdbsh is a small interactive shell over an AV database
// instance preloaded with demo newscasts.  It speaks the query language
// of the paper's §4.3 pseudo-code:
//
//	avdb> select SimpleNewscast where title contains "News"
//	avdb> show 2
//	avdb> devices
//	avdb> trace 2
//	avdb> stats
//
// Run one-shot commands with -c "cmd; cmd".
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"avdb/internal/activities"
	"avdb/internal/activity"
	"avdb/internal/avtime"
	"avdb/internal/core"
	"avdb/internal/media"
	"avdb/internal/obs"
	"avdb/internal/sched"
	"avdb/internal/schema"
	"avdb/internal/synth"
)

func main() {
	oneShot := flag.String("c", "", "run semicolon-separated commands and exit")
	flag.Parse()

	db, err := demoDatabase()
	if err != nil {
		fmt.Fprintln(os.Stderr, "avdbsh:", err)
		os.Exit(1)
	}
	if *oneShot != "" {
		for _, cmd := range strings.Split(*oneShot, ";") {
			if err := execute(db, strings.TrimSpace(cmd)); err != nil {
				fmt.Fprintln(os.Stderr, "avdbsh:", err)
				os.Exit(1)
			}
		}
		return
	}
	fmt.Printf("%s — %d classes, type 'help'\n", db.Name(), len(db.Schema().Classes()))
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("avdb> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			return
		}
		if err := execute(db, line); err != nil {
			fmt.Println("error:", err)
		}
	}
}

// sessionsBuf is the retained listing buffer for the sessions command.
var sessionsBuf []core.EngineSession

func execute(db *core.Database, line string) error {
	switch {
	case line == "help":
		fmt.Print(`commands:
  select <Class> [where <expr>]   run a query, list matching references
  show <oid>                      print an object's attributes
  classes                         list defined classes
  class <Name>                    describe a class
  devices                         list platform devices
  similar <oid>                   rank newscasts by video similarity (QBPE)
  trace <oid>                     play an object's videoTrack, print the span tree
  sessions [-top N]               list playbacks active on the stream engine
                                  (-top caps the listing, admission order)
  tiers                           list each stored value's tier, popularity,
                                  and replica count, plus the shared pool
  stats                           print the database's metric registry
  help | quit
`)
	case line == "sessions" || strings.HasPrefix(line, "sessions "):
		top := 0
		if rest := strings.TrimSpace(strings.TrimPrefix(line, "sessions")); rest != "" {
			fields := strings.Fields(rest)
			n, err := 0, error(nil)
			if len(fields) == 2 && fields[0] == "-top" {
				n, err = strconv.Atoi(fields[1])
			} else {
				err = fmt.Errorf("bad arguments")
			}
			if err != nil || n < 1 {
				return fmt.Errorf("usage: sessions [-top N] (N >= 1)")
			}
			top = n
		}
		eng := db.Engine()
		// The buffer is retained across commands: at thousands of active
		// playbacks a capped listing stays allocation-light.
		sessionsBuf = eng.SessionsAppend(sessionsBuf[:0], top)
		list := sessionsBuf
		if len(list) == 0 {
			fmt.Println("  no active playbacks")
		} else {
			fmt.Printf("  %-16s %-12s %-8s %6s  %-12s %-10s %-8s %-8s %s\n",
				"session", "graph", "rate", "ticks", "next due", "state", "priority", "quality", "pool")
			for _, es := range list {
				quality := "full"
				if es.Degraded {
					quality = "degraded"
				}
				pool := "-"
				if total := es.PoolHits + es.PoolMisses; total > 0 {
					pool = fmt.Sprintf("%d%%", es.PoolHits*100/total)
				}
				fmt.Printf("  %-16s %-12s %-8v %6d  %-12v %-10s %-8v %-8s %s\n",
					es.Session, es.Graph, es.Rate, es.Ticks, es.Due, es.State, es.Priority, quality, pool)
			}
		}
		st := eng.Stats()
		if top > 0 && len(list) < st.Active {
			fmt.Printf("  ... showing first %d of %d\n", len(list), st.Active)
		}
		paused := ""
		if st.Paused {
			paused = ", paused"
		}
		fmt.Printf("engine: %d active, %d steps, %d finished%s\n", st.Active, st.Steps, st.Finished, paused)
		if st.OverloadOn {
			fmt.Printf("overload control: pressure=%v, %d transitions, %d shed, %d degraded (%d now), %d restored\n",
				st.Pressure, st.Transitions, st.Rejected, st.Degraded, st.DegradedNow, st.Restored)
		}
	case line == "tiers":
		infos := db.Storage().TierInfo(db.Clock().Now())
		if len(infos) == 0 {
			fmt.Println("  no stored values")
		} else {
			fmt.Printf("  %-6s %-14s %-10s %-6s %10s  %-7s %s\n",
				"value", "tier", "device", "disc", "popularity", "copies", "streams")
			for _, ti := range infos {
				disc := "-"
				if ti.Disc >= 0 {
					disc = strconv.Itoa(ti.Disc)
				}
				fmt.Printf("  %-6d %-14s %-10s %-6s %10.2f  %-7d %d\n",
					ti.Seg, ti.Tier(), ti.Device, disc, ti.Popularity, ti.Copies, ti.Streams)
			}
		}
		ps := db.Storage().PoolStats()
		fmt.Printf("pool: %d/%d resident, %d streams, %d hits (%d shared), %d misses, %d evicted\n",
			ps.Resident, ps.Capacity, ps.Streams, ps.Hits, ps.Shared, ps.Misses, ps.Evicted)
	case line == "classes":
		for _, n := range db.Schema().Classes() {
			fmt.Println(" ", n)
		}
	case strings.HasPrefix(line, "class "):
		name := strings.TrimSpace(strings.TrimPrefix(line, "class "))
		c, ok := db.Schema().Class(name)
		if !ok {
			return fmt.Errorf("no class %q", name)
		}
		fmt.Printf("class %s", c.Name())
		if c.Super() != nil {
			fmt.Printf(" subclass-of %s", c.Super().Name())
		}
		fmt.Println(" {")
		for _, a := range c.Attrs() {
			switch a.Kind {
			case schema.KindTComp:
				fmt.Printf("  tcomp %s {", a.Name)
				for i, tr := range a.Tracks {
					if i > 0 {
						fmt.Print(", ")
					}
					fmt.Printf("%s %s", tr.MediaKind, tr.Name)
				}
				fmt.Println("}")
			case schema.KindMedia:
				fmt.Printf("  %sValue %s", titleCase(a.MediaKind.String()), a.Name)
				if !a.VideoQuality.IsZero() {
					fmt.Printf(" quality %v", a.VideoQuality)
				}
				fmt.Println()
			default:
				fmt.Printf("  %v %s\n", a.Kind, a.Name)
			}
		}
		fmt.Println("}")
	case line == "devices":
		for _, id := range db.Devices().List() {
			d, _ := db.Devices().Get(id)
			excl := ""
			if d.Exclusive() {
				excl = " (exclusive)"
				if h, held := db.Devices().Holder(id); held {
					excl = fmt.Sprintf(" (held by %s)", h)
				}
			}
			fmt.Printf("  %-10s %v%s\n", id, d.DeviceKind(), excl)
		}
	case strings.HasPrefix(line, "show "):
		n, err := strconv.ParseUint(strings.TrimSpace(strings.TrimPrefix(line, "show ")), 10, 64)
		if err != nil {
			return fmt.Errorf("show wants an OID")
		}
		o, ok := db.Object(schema.OID(n))
		if !ok {
			return fmt.Errorf("no object oid:%d", n)
		}
		fmt.Printf("%s {\n", o)
		for _, f := range o.Fields() {
			d, _ := o.Get(f)
			fmt.Printf("  %s = %s\n", f, d.Format())
		}
		fmt.Println("}")
	case strings.HasPrefix(line, "similar "):
		n, err := strconv.ParseUint(strings.TrimSpace(strings.TrimPrefix(line, "similar ")), 10, 64)
		if err != nil {
			return fmt.Errorf("similar wants an OID")
		}
		o, ok := db.Object(schema.OID(n))
		if !ok {
			return fmt.Errorf("no object oid:%d", n)
		}
		d, ok := o.Get("videoTrack")
		if !ok {
			return fmt.Errorf("%s has no videoTrack", o)
		}
		vv, ok := d.MediaVal().(*media.VideoValue)
		if !ok || vv.NumFrames() == 0 {
			return fmt.Errorf("%s videoTrack is not raster-addressable", o)
		}
		example, err := vv.Frame(0)
		if err != nil {
			return err
		}
		matches, err := db.FindSimilar(o.Class().Name(), "videoTrack", example, 5)
		if err != nil {
			return err
		}
		for _, m := range matches {
			mo, _ := db.Object(m.OID)
			title := ""
			if d, ok := mo.Get("title"); ok {
				title = d.Format()
			}
			fmt.Printf("  %v  distance %.3f  %s\n", m.OID, m.Distance, title)
		}
	case line == "stats":
		fmt.Print(db.Obs().Snapshot().MetricsText())
	case strings.HasPrefix(line, "trace "):
		n, err := strconv.ParseUint(strings.TrimSpace(strings.TrimPrefix(line, "trace ")), 10, 64)
		if err != nil {
			return fmt.Errorf("trace wants an OID")
		}
		return tracePlayback(db, schema.OID(n))
	case strings.HasPrefix(line, "select"):
		oids, err := db.Select(line)
		if err != nil {
			return err
		}
		for _, oid := range oids {
			o, _ := db.Object(oid)
			title := ""
			if d, ok := o.Get("title"); ok {
				title = d.Format()
			}
			fmt.Printf("  %v  %s  %s\n", oid, o.Class().Name(), title)
		}
		fmt.Printf("%d object(s)\n", len(oids))
	default:
		return fmt.Errorf("unknown command (try 'help')")
	}
	return nil
}

// tracePlayback streams an object's videoTrack through a fresh session
// and prints the span tree of just that playback.
func tracePlayback(db *core.Database, oid schema.OID) error {
	o, ok := db.Object(oid)
	if !ok {
		return fmt.Errorf("no object oid:%d", oid)
	}
	if _, ok := o.Get("videoTrack"); !ok {
		return fmt.Errorf("%s has no videoTrack", o)
	}
	before := db.Obs().Tracer().Len()

	sess, err := db.Connect("avdbsh", "lan0")
	if err != nil {
		return err
	}
	defer sess.Close()
	vr, err := activities.NewVideoReader("reader", activity.AtDatabase, media.TypeRawVideo30)
	if err != nil {
		return err
	}
	window := activities.NewVideoWindow("window", activity.AtApplication, media.VideoQuality{}, 50*avtime.Millisecond)
	window.Monitor().SetSink(db.Obs())
	for _, a := range []activity.Activity{vr, window} {
		if err := sess.Install(a, sched.Resources{}); err != nil {
			return err
		}
	}
	rate := media.MBPerSecond
	if _, err := sess.Connect(vr, "out", window, "in", rate); err != nil {
		return err
	}
	if err := sess.BindValue(oid, "videoTrack", vr, "out", rate); err != nil {
		return err
	}
	pb, err := sess.Start()
	if err != nil {
		return err
	}
	if _, err := pb.Wait(); err != nil {
		return err
	}
	sess.Close()

	// Render only the spans this playback added.
	all := db.Obs().Tracer().Spans()
	snap := &obs.Snapshot{Spans: all[before:]}
	fmt.Print(snap.TraceText())
	fmt.Printf("%d frames shown, %s\n", window.FramesShown(), window.Monitor())
	return nil
}

func demoDatabase() (*core.Database, error) {
	db, err := core.OpenDefault("avdb-demo", core.PlatformConfig{Seed: 1})
	if err != nil {
		return nil, err
	}
	db.EnableObservability()
	if _, err := db.DefineClass("MediaObject", "", []schema.AttrDef{
		{Name: "title", Kind: schema.KindString},
	}); err != nil {
		return nil, err
	}
	if _, err := db.DefineClass("SimpleNewscast", "MediaObject", []schema.AttrDef{
		{Name: "broadcastSource", Kind: schema.KindString},
		{Name: "whenBroadcast", Kind: schema.KindDate},
		{Name: "videoTrack", Kind: schema.KindMedia, MediaKind: media.KindVideo},
	}); err != nil {
		return nil, err
	}
	titles := []struct {
		title, src string
		day        int
		pattern    synth.Pattern
	}{
		{"60 Minutes", "CBS", 19, synth.PatternMotion},
		{"Evening News", "CBS", 19, synth.PatternBars},
		{"Morning Report", "NBC", 20, synth.PatternMotion},
		{"World Tonight", "ABC", 21, synth.PatternChecker},
	}
	for i, tt := range titles {
		o, err := db.NewObject("SimpleNewscast")
		if err != nil {
			return nil, err
		}
		for attr, d := range map[string]schema.Datum{
			"title":           schema.String(tt.title),
			"broadcastSource": schema.String(tt.src),
			"whenBroadcast":   schema.Date(time.Date(1993, 4, tt.day, 20, 0, 0, 0, time.UTC)),
			"videoTrack": schema.Media(synth.Video(media.TypeRawVideo30,
				tt.pattern, 64, 48, 8, 90, int64(i))),
		} {
			if err := db.SetAttr(o.OID(), attr, d); err != nil {
				return nil, err
			}
		}
		if _, err := db.PlaceMedia(o.OID(), "videoTrack", "", media.MBPerSecond); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// titleCase upper-cases the first byte of an ASCII word.
func titleCase(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}
