// Command avbench regenerates every table and figure of "Audio/Video
// Databases: An Object-Oriented Approach" (ICDE 1993) and runs the
// benchmarks for the five design characteristics of §3.3.
//
// Usage:
//
//	avbench                  # run everything
//	avbench -exp fig3        # one experiment: table1, fig1..fig4, c1..c5
//	avbench -frames 300      # longer streams
//	avbench -list            # list experiment names
//	avbench -exp obs -metrics -trace
//	                         # instrumented playback with the full
//	                         # metric and span-tree rendition
//	avbench -exp scale -workers 4
//	                         # wavefront scaling sweep: serial vs 2 vs
//	                         # 4 worker lanes on an 8-wide graph
//	avbench -exp stripe -width 4
//	                         # striped placement + SCAN-EDF rounds vs
//	                         # single-disk multi-stream reads
//	avbench -exp tenancy -sessions 4
//	                         # multi-session engine: N sessions sharing
//	                         # one clip and one clock vs back-to-back
//	avbench -exp overload -sessions 4
//	                         # engine overload control: priority-ordered
//	                         # degrade sweeps and load shedding vs thrash
//	avbench -exp zipf -sessions 1000
//	                         # sharded engine: Zipf hot-clip/cold-tail
//	                         # tenancy rerun with EngineWorkers 1/2/4,
//	                         # checked byte-identical to serial
//	avbench -exp jukebox     # storage hierarchy: cold platter swaps,
//	                         # popularity promotion, hot replication,
//	                         # idle demotion sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"avdb/internal/avtime"
	"avdb/internal/experiment"
	"avdb/internal/media"
)

type runner struct {
	name string
	desc string
	run  func(frames int) (fmt.Stringer, error)
}

// stringers concatenates several renditions under one experiment.
type stringers []fmt.Stringer

func (s stringers) String() string {
	var out string
	for i, x := range s {
		if i > 0 {
			out += "\n"
		}
		out += x.String()
	}
	return out
}

// sweepStringer adapts a Fig. 4 sweep to fmt.Stringer.
type sweepStringer []experiment.Fig4SweepRow

func (s sweepStringer) String() string { return experiment.SweepString(s) }

// obsStringer renders an Observe result with optional full metric and
// trace sections.
type obsStringer struct {
	res     *experiment.ObserveResult
	metrics bool
	trace   bool
}

func (o obsStringer) String() string {
	s := o.res.String()
	if o.metrics {
		s += "\n" + o.res.Snap.MetricsText()
	}
	if o.trace {
		s += "\n" + o.res.Snap.TraceText()
	}
	return s
}

// scaleSweep picks the worker counts for the scale experiment: always
// the serial baseline, then doublings up to the requested lane count
// (0 means GOMAXPROCS, appended as the final arm).
func scaleSweep(workers int) []int {
	sweep := []int{1}
	for w := 2; w < workers; w *= 2 {
		sweep = append(sweep, w)
	}
	if workers > 1 {
		sweep = append(sweep, workers)
	} else if workers <= 0 {
		sweep = append(sweep, 2, 0)
	}
	return sweep
}

func runners(metrics, trace bool, workers, width, sessions int) []runner {
	return []runner{
		{"rates", "media data rates and measured compression", func(int) (fmt.Stringer, error) {
			return experiment.Rates()
		}},
		{"table1", "Table 1: the video activity classes", func(int) (fmt.Stringer, error) {
			return experiment.Table1()
		}},
		{"fig1", "Fig. 1: Newscast.clip timeline diagram", func(int) (fmt.Stringer, error) {
			return experiment.Fig1()
		}},
		{"fig2", "Fig. 2: flow composition, flat chain vs composite", func(frames int) (fmt.Stringer, error) {
			return experiment.Fig2(frames)
		}},
		{"fig3", "Fig. 3: synchronized composite playback over a session", func(frames int) (fmt.Stringer, error) {
			return experiment.Fig3(frames)
		}},
		{"fig4", "Fig. 4: virtual world, render at database vs client", func(frames int) (fmt.Stringer, error) {
			res, err := experiment.Fig4(frames, 320, 240, 10*media.MBPerSecond)
			if err != nil {
				return nil, err
			}
			sweep, err := experiment.Fig4Sweep(frames/3, 320, 240, []media.DataRate{
				500 * media.KBPerSecond, 2 * media.MBPerSecond,
				5 * media.MBPerSecond, 40 * media.MBPerSecond,
			})
			if err != nil {
				return nil, err
			}
			return stringers{res, sweepStringer(sweep)}, nil
		}},
		{"c1", "C1 database platform: processing placed with the data", func(frames int) (fmt.Stringer, error) {
			return experiment.C1DevicePlacement(frames)
		}},
		{"c2", "C2 scheduling: admission control vs best effort", func(frames int) (fmt.Stringer, error) {
			return experiment.C2AdmissionControl(120, frames)
		}},
		{"c3", "C3 client interface: asynchronous vs blocking", func(frames int) (fmt.Stringer, error) {
			return experiment.C3AsyncVsBlocking(frames, 5*avtime.Millisecond)
		}},
		{"c4", "C4 data placement: same-device copy vs dual-device mix", func(frames int) (fmt.Stringer, error) {
			return experiment.C4DataPlacement(frames)
		}},
		{"c5", "C5 data representation: quality factors over scalable video", func(frames int) (fmt.Stringer, error) {
			return experiment.C5QualityFactors(frames / 4)
		}},
		{"chaos", "fault injection: stream survival with recovery on vs off", func(frames int) (fmt.Stringer, error) {
			return experiment.Chaos(frames, 7)
		}},
		{"obs", "observability: instrumented playback, spans and QoS metrics", func(frames int) (fmt.Stringer, error) {
			res, err := experiment.Observe(frames, 42)
			if err != nil {
				return nil, err
			}
			return obsStringer{res: res, metrics: metrics, trace: trace}, nil
		}},
		{"scale", "wavefront scaling: serial vs parallel execution of a wide graph", func(frames int) (fmt.Stringer, error) {
			return experiment.Scale(8, frames, scaleSweep(workers))
		}},
		{"stripe", "striped placement + SCAN-EDF rounds vs single-disk reads", func(frames int) (fmt.Stringer, error) {
			return experiment.Stripe(frames, width)
		}},
		{"tenancy", "multi-session engine: shared clock + merged rounds vs back-to-back", func(frames int) (fmt.Stringer, error) {
			return experiment.Tenancy(frames, sessions)
		}},
		{"overload", "engine overload control: degrade sweeps + load shedding vs thrash", func(frames int) (fmt.Stringer, error) {
			return experiment.Overload(frames, sessions)
		}},
		{"jukebox", "storage hierarchy: promote, replicate and demote over the videodisc tier", func(frames int) (fmt.Stringer, error) {
			return experiment.Jukebox(frames)
		}},
		{"zipf", "sharded engine: Zipf tenancy swept over EngineWorkers 1/2/4", func(frames int) (fmt.Stringer, error) {
			n := sessions
			if n < 12 { // the experiment needs at least one session per clip
				n = 96
			}
			return experiment.ZipfTenancy(frames, n)
		}},
	}
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (or 'all')")
	frames := flag.Int("frames", 120, "stream length in frames")
	list := flag.Bool("list", false, "list experiments and exit")
	metrics := flag.Bool("metrics", false, "print the full metric registry after the obs experiment")
	trace := flag.Bool("trace", false, "print the span tree after the obs experiment")
	workers := flag.Int("workers", 0, "top worker count for the scale experiment (0 = GOMAXPROCS)")
	width := flag.Int("width", 4, "stripe width for the stripe experiment")
	sessions := flag.Int("sessions", 4, "session count for the tenancy and overload experiments")
	flag.Parse()

	rs := runners(*metrics, *trace, *workers, *width, *sessions)
	if *list {
		for _, r := range rs {
			fmt.Printf("%-8s %s\n", r.name, r.desc)
		}
		return
	}
	var failed bool
	for _, r := range rs {
		if *exp != "all" && !strings.EqualFold(*exp, r.name) {
			continue
		}
		res, err := r.run(*frames)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.name, err)
			failed = true
			continue
		}
		fmt.Println(strings.Repeat("=", 72))
		fmt.Println(res.String())
	}
	if failed {
		os.Exit(1)
	}
	if *exp != "all" {
		for _, r := range rs {
			if strings.EqualFold(*exp, r.name) {
				return
			}
		}
		fmt.Fprintf(os.Stderr, "avbench: unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
}
