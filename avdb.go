// Package avdb is an audio/video database system: a Go implementation of
// Gibbs, Breiteneder and Tsichritzis, "Audio/Video Databases: An
// Object-Oriented Approach" (ICDE 1993).
//
// An AV database is "a locus of AV activities": it stores temporally
// composed audio/video values, answers queries with references, and lets
// applications build graphs of interconnected producer/consumer/
// transformer activities — under admission control, with client-visible
// data placement, quality-factor-driven representation selection, and an
// asynchronous stream-based client interface.
//
// This package is the façade over the implementation packages:
//
//	internal/core       the database system (catalog, sessions, recovery)
//	internal/activity   the MediaActivity framework and flow composition
//	internal/activities the concrete activity classes of the paper's Table 1
//	internal/temporal   temporal composition (tcomp, timelines)
//	internal/media      media values, types and quality factors
//	internal/codec      intra/inter/scalable video and audio codecs
//	internal/query      the query language and indexes
//	internal/txn        locking, WAL recovery and versioning
//	internal/storage    device-placed media segments
//	internal/device     the simulated hardware platform
//	internal/netsim     the simulated client network
//	internal/sched      clocks, admission control, resynchronization
//	internal/synth      synthetic capture (patterns, animation, MIDI)
//	internal/render     the virtual-world renderer
//	internal/experiment the paper's figures, table and design-claim benches
//
// See examples/quickstart for the paper's §4.3 program end to end, and
// cmd/avbench for the full experiment suite.
package avdb

import (
	"avdb/internal/core"
	"avdb/internal/media"
	"avdb/internal/schema"
)

// Database is an AV database instance.
type Database = core.Database

// Session is one client's connection to a database.
type Session = core.Session

// Playback is the asynchronous handle of a started stream.
type Playback = core.Playback

// Config parameterizes a database.
type Config = core.Config

// PlatformConfig sizes the default simulated platform.
type PlatformConfig = core.PlatformConfig

// RepresentationHints guide the database's encoding choice for stored
// video.
type RepresentationHints = core.RepresentationHints

// RetrievalInfo describes how a quality-factor retrieval was served.
type RetrievalInfo = core.RetrievalInfo

// VideoQuality is the paper's "w x h x d @ r" quality factor.
type VideoQuality = media.VideoQuality

// AudioQuality is the paper's voice/FM/CD audio quality factor.
type AudioQuality = media.AudioQuality

// OID is an object reference, the result currency of queries.
type OID = schema.OID

// Open creates a database; register devices and links afterwards.  It
// fails on an invalid configuration (e.g. a negative resource budget).
func Open(cfg Config) (*Database, error) { return core.Open(cfg) }

// OpenDefault creates a database on a conventional simulated platform.
func OpenDefault(name string, pc PlatformConfig) (*Database, error) {
	return core.OpenDefault(name, pc)
}

// ParseVideoQuality parses "640x480x8@30".
func ParseVideoQuality(s string) (VideoQuality, error) { return media.ParseVideoQuality(s) }

// RetrieveAtQuality serves a stored video value at a requested quality.
func RetrieveAtQuality(v media.Value, q VideoQuality) (media.Value, RetrievalInfo, error) {
	return core.RetrieveAtQuality(v, q)
}
