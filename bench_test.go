// Benchmarks regenerating every table and figure of the paper plus the
// five §3.3 design-claim experiments.  Each benchmark runs the same code
// path as `avbench -exp <name>` and reports the experiment's headline
// numbers as custom metrics, so `go test -bench .` reproduces the whole
// evaluation.
package avdb_test

import (
	"testing"

	"avdb/internal/avtime"
	"avdb/internal/experiment"
	"avdb/internal/media"
)

// BenchmarkTable1Activities instantiates and introspects the activity
// classes of Table 1.
func BenchmarkTable1Activities(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 9 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

// BenchmarkFig1TemporalComposition builds and verifies the Newscast.clip
// timeline of Fig. 1.
func BenchmarkFig1TemporalComposition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Boundaries) != 4 {
			b.Fatal("boundary count wrong")
		}
	}
}

// BenchmarkFig2FlowComposition runs the read→decode→display chain flat
// and as a composite (Fig. 2) and reports the composite's overhead.
func BenchmarkFig2FlowComposition(b *testing.B) {
	var res *experiment.Fig2Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.Fig2(120)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Identical {
			b.Fatal("composite output differs")
		}
	}
	b.ReportMetric(res.CompressionRate, "compression:1")
	b.ReportMetric(float64(res.FlatBytes), "bytes-displayed")
}

// BenchmarkFig3SynchronizedPlayback plays a temporally composed newscast
// (Fig. 3) and reports the inter-track skews with and without composite
// synchronization.
func BenchmarkFig3SynchronizedPlayback(b *testing.B) {
	var res *experiment.Fig3Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.Fig3(120)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.IndependentSkew.Seconds()*1000, "skew-independent-ms")
	b.ReportMetric(res.CompositeSkew.Seconds()*1000, "skew-composite-ms")
	b.ReportMetric(100*res.MissRate, "miss-%")
}

// BenchmarkFig4VirtualWorld runs the walkthrough under both activity
// graphs of Fig. 4 and reports bytes per frame over the network.
func BenchmarkFig4VirtualWorld(b *testing.B) {
	var res *experiment.Fig4Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.Fig4(60, 320, 240, 10*media.MBPerSecond)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Rows[0].BytesPerFrame, "wire-B/frame-client-render")
	b.ReportMetric(res.Rows[1].BytesPerFrame, "wire-B/frame-db-render")
}

// BenchmarkC1DevicePlacement measures the network traffic of a two-source
// mix with the mixer at either end (§3.3 database platform).
func BenchmarkC1DevicePlacement(b *testing.B) {
	var res *experiment.C1Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.C1DevicePlacement(120)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Factor, "traffic-factor")
}

// BenchmarkC2AdmissionControl measures deadline misses with reservations
// versus best effort (§3.3 scheduling).
func BenchmarkC2AdmissionControl(b *testing.B) {
	var res *experiment.C2Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.C2AdmissionControl(120, 90)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Admitted), "streams-admitted")
	b.ReportMetric(100*res.AdmittedMisses, "miss-%-admitted")
	b.ReportMetric(100*res.BestEffortMisses, "miss-%-best-effort")
}

// BenchmarkC3AsyncVsBlocking measures completion under the asynchronous
// stream interface versus request/reply (§3.3 client interface).
func BenchmarkC3AsyncVsBlocking(b *testing.B) {
	var res *experiment.C3Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.C3AsyncVsBlocking(120, 5*avtime.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Speedup, "async-speedup")
	b.ReportMetric(res.FirstResultAt.Seconds()*1000, "first-result-ms")
}

// BenchmarkC4DataPlacement measures two-stream startup latency with and
// without client-visible placement (§3.3 data placement).
func BenchmarkC4DataPlacement(b *testing.B) {
	var res *experiment.C4Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.C4DataPlacement(120)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.SameDevice.Seconds()*1000, "startup-ms-same-device")
	b.ReportMetric(res.DualDevice.Seconds()*1000, "startup-ms-dual-device")
}

// BenchmarkC5QualityFactors measures serving quality factors from a
// scalable encoding versus transcoding (§3.3/§4.1 data representation).
func BenchmarkC5QualityFactors(b *testing.B) {
	var res *experiment.C5Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.C5QualityFactors(30)
		if err != nil {
			b.Fatal(err)
		}
	}
	var drop, transcode float64
	for _, row := range res.Rows {
		switch row.Method {
		case "layer-drop":
			drop += float64(row.BytesProcessed)
		case "transcode":
			transcode += float64(row.BytesProcessed)
		}
	}
	b.ReportMetric(drop, "bytes-layer-drop")
	b.ReportMetric(transcode, "bytes-transcode")
}
