#!/usr/bin/env bash
# Back-compat wrapper: the benchmark suites live in scripts/bench.sh now.
#
# Usage: scripts/bench_pr3.sh [output.json]
exec "$(dirname "$0")/bench.sh" pr3 "$@"
