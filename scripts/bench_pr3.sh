#!/usr/bin/env bash
# Runs the wavefront-executor benchmarks (serial vs parallel on the
# 8-wide burn graph) and writes a machine-readable BENCH_pr3.json with
# ns/op for both arms and the resulting speedup.
#
# Usage: scripts/bench_pr3.sh [output.json]
#
# The speedup is hardware-dependent: on a single-core host both arms
# collapse to the same inline path and the ratio is ~1.0 by design.
set -euo pipefail

out="${1:-BENCH_pr3.json}"
cd "$(dirname "$0")/.."

bench_out=$(go test -run '^$' -bench 'BenchmarkGraphRun$' -benchtime "${BENCHTIME:-10x}" -count "${BENCHCOUNT:-1}" ./internal/activity/)
echo "$bench_out"

# Benchmark lines look like:
#   BenchmarkGraphRun/wide-serial-8     10   27469964 ns/op   1108048 B/op   3917 allocs/op
# With -count > 1 each arm repeats; take the minimum ns/op per arm.
serial=$(echo "$bench_out" | awk '/BenchmarkGraphRun\/wide-serial/ {if (min=="" || $3+0 < min) min=$3+0} END {print min}')
parallel=$(echo "$bench_out" | awk '/BenchmarkGraphRun\/wide-parallel/ {if (min=="" || $3+0 < min) min=$3+0} END {print min}')

if [ -z "$serial" ] || [ -z "$parallel" ]; then
  echo "bench_pr3: could not parse benchmark output" >&2
  exit 1
fi

cpus=$(go env GOMAXPROCS 2>/dev/null || echo "")
[ -n "$cpus" ] || cpus=$(getconf _NPROCESSORS_ONLN)
goversion=$(go env GOVERSION)

awk -v serial="$serial" -v parallel="$parallel" -v cpus="$cpus" -v gov="$goversion" 'BEGIN {
  speedup = (parallel > 0) ? serial / parallel : 0
  printf "{\n"
  printf "  \"benchmark\": \"BenchmarkGraphRun\",\n"
  printf "  \"graph\": {\"width\": 8, \"frames\": 30, \"shape\": \"fan-in/fan-out\"},\n"
  printf "  \"serial_ns_per_op\": %d,\n", serial
  printf "  \"parallel_ns_per_op\": %d,\n", parallel
  printf "  \"speedup\": %.3f,\n", speedup
  printf "  \"cpus\": %d,\n", cpus
  printf "  \"go\": \"%s\"\n", gov
  printf "}\n"
}' > "$out"

echo "wrote $out:"
cat "$out"
