#!/usr/bin/env bash
# Runs the benchmark suite for one PR tag and writes a machine-readable
# BENCH_<tag>.json.
#
# Usage: scripts/bench.sh <tag> [output.json]
#        scripts/bench.sh gate
#
#   pr3   wavefront executor: serial vs parallel BenchmarkGraphRun on the
#         8-wide burn graph; reports ns/op per arm and the host speedup.
#   pr4   striped storage: BenchmarkStripedRead (demand vs SCAN-EDF read
#         path host cost) plus the deterministic virtual-time stripe
#         experiment (aggregate MB/s and speedup per arm).
#   pr5   multi-session engine: BenchmarkEngineSessions (host cost of the
#         shared run loop at 1 vs 4 sessions) plus the deterministic
#         virtual-time tenancy experiment (shared-clock sessions vs
#         back-to-back: throughput, speedup, seeks charged/saved).
#   pr6   overload control: BenchmarkEngineOverload (run-loop host cost
#         with the detector + sweeps on vs off) plus the deterministic
#         overload experiment (bounded vs thrashing miss rates).
#   pr7   allocation-free SCAN-EDF hot path: BenchmarkStripedRead (the
#         scheduled read must stay within 2x of a demand read — emitted
#         as a gated ratio) plus BenchmarkIOSchedFlush (per-round
#         scheduler cost; warm-pool arms are gated and must report
#         0 allocs/op).
#   pr8   allocation-free engine step path: BenchmarkEngineStep over
#         no-op runs isolates the engine's own per-step bookkeeping
#         (run-set heap, batch resolution, label switch, snapshot
#         refresh, clock commit) at narrow and wide session counts;
#         both arms are gated ns/op and must report 0 allocs/op.
#
#   pr9   sharded engine step: BenchmarkEngineStepSharded over busy runs
#         (µs-scale tick work) at 256/1k/4k sessions, serial vs a
#         4-worker shard pool; all arms are gated ns/op and must report
#         0 allocs/op.  On hosts with >= 2 CPUs the 1k-session arm must
#         show >= 2x step throughput over serial (on a 1-CPU host the
#         speedup is recorded but not enforced — there is nothing to
#         parallelize onto).  The virtual side runs the Zipf tenancy at
#         1000 sessions and hard-fails unless the EngineWorkers 2 and 4
#         arms are byte-identical to serial.
#
#   pr10  shared buffer pool + storage hierarchy: BenchmarkPoolHit (the
#         warm pool-hit read path is gated ns/op and must report
#         0 allocs/op) plus the Zipf tenancy rerun with the pool on —
#         the pooled arms must stay byte-identical to serial at
#         EngineWorkers 2/4, the co-viewing cohort must hit the pool on
#         more than half its reads, and pooled throughput must beat
#         both the same run's unpooled arm and PR 9's committed
#         87.31 MB/s (virtual numbers, so host-independent).
#
#   gate  trajectory gate: re-measure every committed BENCH_*.json tag
#         and fail (via cmd/benchgate) when any host ns/op metric
#         regressed more than BENCH_GATE_RATIO (default 1.10) over the
#         committed baseline.
#
# Host speedups are hardware-dependent; the stripe experiment's virtual
# numbers are deterministic and reproduce the committed golden file.
set -euo pipefail

tag="${1:-}"
if [ -z "$tag" ]; then
  echo "usage: scripts/bench.sh <tag> [output.json]" >&2
  exit 2
fi
out="${2:-BENCH_${tag}.json}"
cd "$(dirname "$0")/.."

cpus=$(go env GOMAXPROCS 2>/dev/null || echo "")
[ -n "$cpus" ] || cpus=$(getconf _NPROCESSORS_ONLN)
goversion=$(go env GOVERSION)

case "$tag" in
pr3)
  bench_out=$(go test -run '^$' -bench 'BenchmarkGraphRun$' -benchtime "${BENCHTIME:-10x}" -count "${BENCHCOUNT:-1}" ./internal/activity/)
  echo "$bench_out"
  # Benchmark lines look like:
  #   BenchmarkGraphRun/wide-serial-8   10   27469964 ns/op   ...
  # With -count > 1 each arm repeats; take the minimum ns/op per arm.
  serial=$(echo "$bench_out" | awk '/BenchmarkGraphRun\/wide-serial/ {if (min=="" || $3+0 < min) min=$3+0} END {print min}')
  parallel=$(echo "$bench_out" | awk '/BenchmarkGraphRun\/wide-parallel/ {if (min=="" || $3+0 < min) min=$3+0} END {print min}')
  if [ -z "$serial" ] || [ -z "$parallel" ]; then
    echo "bench: could not parse BenchmarkGraphRun output" >&2
    exit 1
  fi
  awk -v serial="$serial" -v parallel="$parallel" -v cpus="$cpus" -v gov="$goversion" 'BEGIN {
    speedup = (parallel > 0) ? serial / parallel : 0
    printf "{\n"
    printf "  \"benchmark\": \"BenchmarkGraphRun\",\n"
    printf "  \"graph\": {\"width\": 8, \"frames\": 30, \"shape\": \"fan-in/fan-out\"},\n"
    printf "  \"serial_ns_per_op\": %d,\n", serial
    printf "  \"parallel_ns_per_op\": %d,\n", parallel
    printf "  \"speedup\": %.3f,\n", speedup
    printf "  \"cpus\": %d,\n", cpus
    printf "  \"go\": \"%s\"\n", gov
    printf "}\n"
  }' > "$out"
  ;;
pr4)
  graph_out=$(go test -run '^$' -bench 'BenchmarkGraphRun$' -benchtime "${BENCHTIME:-20x}" -count "${BENCHCOUNT:-1}" ./internal/activity/)
  echo "$graph_out"
  gserial=$(echo "$graph_out" | awk '/BenchmarkGraphRun\/wide-serial/ {if (min=="" || $3+0 < min) min=$3+0} END {print min}')
  gparallel=$(echo "$graph_out" | awk '/BenchmarkGraphRun\/wide-parallel/ {if (min=="" || $3+0 < min) min=$3+0} END {print min}')
  if [ -z "$gserial" ] || [ -z "$gparallel" ]; then
    echo "bench: could not parse BenchmarkGraphRun output" >&2
    exit 1
  fi
  bench_out=$(go test -run '^$' -bench 'BenchmarkStripedRead' -benchtime "${BENCHTIME:-20x}" -count "${BENCHCOUNT:-1}" ./internal/storage/)
  echo "$bench_out"
  single=$(echo "$bench_out" | awk '/BenchmarkStripedRead\/single-demand/ {if (min=="" || $3+0 < min) min=$3+0} END {print min}')
  demand=$(echo "$bench_out" | awk '/BenchmarkStripedRead\/striped-demand/ {if (min=="" || $3+0 < min) min=$3+0} END {print min}')
  scanedf=$(echo "$bench_out" | awk '/BenchmarkStripedRead\/striped-scan-edf/ {if (min=="" || $3+0 < min) min=$3+0} END {print min}')
  if [ -z "$single" ] || [ -z "$demand" ] || [ -z "$scanedf" ]; then
    echo "bench: could not parse BenchmarkStripedRead output" >&2
    exit 1
  fi
  # The virtual-time comparison: deterministic, matches the stripe golden.
  exp_out=$(go run ./cmd/avbench -exp stripe -frames 90 -width 4)
  echo "$exp_out"
  # Table rows: arm name (may contain spaces), then columns ending in
  #   ... agg MB/s  speedup  seeks  saved  misses  max batch
  read -r single_mbs single_seeks <<<"$(echo "$exp_out" | awk '/^single disk /{print $(NF-5), $(NF-3)}')"
  read -r edf_mbs edf_speedup edf_seeks edf_saved <<<"$(echo "$exp_out" | awk '/^striped scan-edf /{print $(NF-5), $(NF-4), $(NF-3), $(NF-2)}')"
  if [ -z "$single_mbs" ] || [ -z "$edf_mbs" ]; then
    echo "bench: could not parse stripe experiment output" >&2
    exit 1
  fi
  awk -v single="$single" -v demand="$demand" -v scanedf="$scanedf" \
      -v gserial="$gserial" -v gparallel="$gparallel" \
      -v smbs="$single_mbs" -v sseeks="$single_seeks" \
      -v embs="$edf_mbs" -v espeed="$edf_speedup" -v eseeks="$edf_seeks" -v esaved="$edf_saved" \
      -v cpus="$cpus" -v gov="$goversion" 'BEGIN {
    gspeed = (gparallel > 0) ? gserial / gparallel : 0
    printf "{\n"
    printf "  \"benchmark\": \"BenchmarkStripedRead\",\n"
    printf "  \"workload\": {\"streams\": 8, \"frames\": 30, \"stripe_width\": 4},\n"
    printf "  \"graph_run\": {\"serial_ns_per_op\": %d, \"parallel_ns_per_op\": %d, \"speedup\": %.3f},\n", gserial, gparallel, gspeed
    printf "  \"host_ns_per_op\": {\"single_demand\": %d, \"striped_demand\": %d, \"striped_scan_edf\": %d},\n", single, demand, scanedf
    printf "  \"virtual\": {\n"
    printf "    \"experiment\": \"avbench -exp stripe -frames 90 -width 4\",\n"
    printf "    \"single_disk_mb_per_s\": %s,\n", smbs
    printf "    \"scan_edf_mb_per_s\": %s,\n", embs
    printf "    \"scan_edf_speedup\": \"%s\",\n", espeed
    printf "    \"seeks_charged\": {\"single_disk\": %s, \"scan_edf\": %s},\n", sseeks, eseeks
    printf "    \"seeks_saved\": {\"scan_edf\": %s}\n", esaved
    printf "  },\n"
    printf "  \"cpus\": %d,\n", cpus
    printf "  \"go\": \"%s\"\n", gov
    printf "}\n"
  }' > "$out"
  ;;
pr5)
  bench_out=$(go test -run '^$' -bench 'BenchmarkEngineSessions' -benchtime "${BENCHTIME:-20x}" -count "${BENCHCOUNT:-1}" ./internal/core/)
  echo "$bench_out"
  one=$(echo "$bench_out" | awk '/BenchmarkEngineSessions\/sessions-1/ {if (min=="" || $3+0 < min) min=$3+0} END {print min}')
  four=$(echo "$bench_out" | awk '/BenchmarkEngineSessions\/sessions-4/ {if (min=="" || $3+0 < min) min=$3+0} END {print min}')
  if [ -z "$one" ] || [ -z "$four" ]; then
    echo "bench: could not parse BenchmarkEngineSessions output" >&2
    exit 1
  fi
  # The virtual-time comparison: deterministic, matches the tenancy golden.
  exp_out=$(go run ./cmd/avbench -exp tenancy -frames 45 -sessions 4)
  echo "$exp_out"
  # The 4-session row:
  #   sessions  shared wall  serial wall  shared MB/s  serial MB/s  speedup
  #   shared seeks  serial seeks  saved  misses  max batch
  read -r sh_mbs se_mbs speedup sh_seeks se_seeks saved <<<"$(echo "$exp_out" | awk '/^4  /{print $4, $5, $6, $7, $8, $9}')"
  if [ -z "$sh_mbs" ] || [ -z "$se_mbs" ]; then
    echo "bench: could not parse tenancy experiment output" >&2
    exit 1
  fi
  awk -v one="$one" -v four="$four" \
      -v shmbs="$sh_mbs" -v sembs="$se_mbs" -v speedup="$speedup" \
      -v shseeks="$sh_seeks" -v seseeks="$se_seeks" -v saved="$saved" \
      -v cpus="$cpus" -v gov="$goversion" 'BEGIN {
    printf "{\n"
    printf "  \"benchmark\": \"BenchmarkEngineSessions\",\n"
    printf "  \"workload\": {\"sessions\": 4, \"frames\": 45, \"stripe_width\": 4, \"shared_clip\": true},\n"
    printf "  \"host_ns_per_op\": {\"sessions_1\": %d, \"sessions_4\": %d},\n", one, four
    printf "  \"virtual\": {\n"
    printf "    \"experiment\": \"avbench -exp tenancy -frames 45 -sessions 4\",\n"
    printf "    \"shared_mb_per_s\": %s,\n", shmbs
    printf "    \"serial_mb_per_s\": %s,\n", sembs
    printf "    \"speedup\": \"%s\",\n", speedup
    printf "    \"seeks_charged\": {\"shared\": %s, \"serial\": %s},\n", shseeks, seseeks
    printf "    \"seeks_saved\": {\"shared\": %s}\n", saved
    printf "  },\n"
    printf "  \"cpus\": %d,\n", cpus
    printf "  \"go\": \"%s\"\n", gov
    printf "}\n"
  }' > "$out"
  ;;
pr6)
  bench_out=$(go test -run '^$' -bench 'BenchmarkEngineOverload' -benchtime "${BENCHTIME:-20x}" -count "${BENCHCOUNT:-1}" ./internal/core/)
  echo "$bench_out"
  off=$(echo "$bench_out" | awk '/BenchmarkEngineOverload\/control-off/ {if (min=="" || $3+0 < min) min=$3+0} END {print min}')
  on=$(echo "$bench_out" | awk '/BenchmarkEngineOverload\/control-on/ {if (min=="" || $3+0 < min) min=$3+0} END {print min}')
  if [ -z "$off" ] || [ -z "$on" ]; then
    echo "bench: could not parse BenchmarkEngineOverload output" >&2
    exit 1
  fi
  # The virtual-time comparison: deterministic, matches the overload golden.
  exp_out=$(go run ./cmd/avbench -exp overload -frames 120 -sessions 4)
  echo "$exp_out"
  # Control-on io line first, control-off second:
  #   io: deadline misses=23/390 served (5.9%), rounds overrun=23
  read -r on_miss on_served on_rate on_over <<<"$(echo "$exp_out" | awk '/^io:/ {
    split($3, a, /[=\/]/); rate=$5; gsub(/[()%,]/, "", rate); split($7, b, "=")
    print a[2], a[3], rate, b[2]; exit }')"
  read -r off_miss off_served off_rate off_over <<<"$(echo "$exp_out" | awk '/^io:/ {
    if (++n == 2) { split($3, a, /[=\/]/); rate=$5; gsub(/[()%,]/, "", rate); split($7, b, "=")
    print a[2], a[3], rate, b[2] } }')"
  #   pressure: final=normal transitions=7 rejected=1 degraded=4 restored=4
  read -r rejected degraded restored <<<"$(echo "$exp_out" | awk '/^pressure:/ {
    split($4, r, "="); split($5, d, "="); split($6, s, "=")
    print r[2], d[2], s[2]; exit }')"
  if [ -z "$on_miss" ] || [ -z "$off_miss" ] || [ -z "$rejected" ]; then
    echo "bench: could not parse overload experiment output" >&2
    exit 1
  fi
  awk -v off="$off" -v on="$on" \
      -v onm="$on_miss" -v onsv="$on_served" -v onr="$on_rate" -v ono="$on_over" \
      -v offm="$off_miss" -v offsv="$off_served" -v offr="$off_rate" -v offo="$off_over" \
      -v rej="$rejected" -v deg="$degraded" -v res="$restored" \
      -v cpus="$cpus" -v gov="$goversion" 'BEGIN {
    printf "{\n"
    printf "  \"benchmark\": \"BenchmarkEngineOverload\",\n"
    printf "  \"workload\": {\"sessions\": 4, \"frames\": 120, \"loaded_disks\": 2, \"late_joiner\": true},\n"
    printf "  \"host_ns_per_op\": {\"control_off\": %d, \"control_on\": %d},\n", off, on
    printf "  \"virtual\": {\n"
    printf "    \"experiment\": \"avbench -exp overload -frames 120 -sessions 4\",\n"
    printf "    \"control_on\": {\"deadline_misses\": %s, \"served\": %s, \"miss_rate_pct\": %s, \"rounds_overrun\": %s, \"rejected\": %s, \"degraded\": %s, \"restored\": %s},\n", onm, onsv, onr, ono, rej, deg, res
    printf "    \"control_off\": {\"deadline_misses\": %s, \"served\": %s, \"miss_rate_pct\": %s, \"rounds_overrun\": %s}\n", offm, offsv, offr, offo
    printf "  },\n"
    printf "  \"cpus\": %d,\n", cpus
    printf "  \"go\": \"%s\"\n", gov
    printf "}\n"
  }' > "$out"
  ;;
pr7)
  bench_out=$(go test -run '^$' -bench 'BenchmarkStripedRead' -benchtime "${BENCHTIME:-100x}" -count "${BENCHCOUNT:-1}" ./internal/storage/)
  echo "$bench_out"
  single=$(echo "$bench_out" | awk '/BenchmarkStripedRead\/single-demand/ {if (min=="" || $3+0 < min) min=$3+0} END {print min}')
  demand=$(echo "$bench_out" | awk '/BenchmarkStripedRead\/striped-demand/ {if (min=="" || $3+0 < min) min=$3+0} END {print min}')
  scanedf=$(echo "$bench_out" | awk '/BenchmarkStripedRead\/striped-scan-edf/ {if (min=="" || $3+0 < min) min=$3+0} END {print min}')
  if [ -z "$single" ] || [ -z "$demand" ] || [ -z "$scanedf" ]; then
    echo "bench: could not parse BenchmarkStripedRead output" >&2
    exit 1
  fi
  # The gated overhead ratio pairs each -count repetition's scan-edf arm
  # with the demand arm from the same repetition before taking the best:
  # a ratio of independent minima mixes runs measured minutes apart and
  # overstates the overhead whenever the arms' noise is anti-correlated.
  ratio=$(echo "$bench_out" | awk '
    /BenchmarkStripedRead\/striped-demand/ {d[nd++]=$3+0}
    /BenchmarkStripedRead\/striped-scan-edf/ {s[ns++]=$3+0}
    END {
      n = (nd < ns) ? nd : ns
      if (n == 0) exit 1
      for (i = 0; i < n; i++) { r = s[i] / d[i]; if (i == 0 || r < min) min = r }
      printf "%.3f", min
    }')
  if [ -z "$ratio" ]; then
    echo "bench: could not pair demand and scan-edf repetitions" >&2
    exit 1
  fi
  # The flush benchmark keeps its own iteration count: the warm arms
  # must run long enough to amortize first-use pool warmup to a reported
  # 0 allocs/op, regardless of how short BENCHTIME squeezes the rest.
  flush_out=$(go test -run '^$' -bench 'BenchmarkIOSchedFlush' -benchtime "${FLUSH_BENCHTIME:-2000x}" -count "${BENCHCOUNT:-1}" ./internal/storage/)
  echo "$flush_out"
  # Warm arms are gated ns/op and must be allocation-free; cold arms
  # (pool warmup included) are recorded but not gated — their cost
  # depends on GC timing through the sync.Pool.
  nw=$(echo "$flush_out" | awk '/IOSchedFlush\/narrow-1disk-warm/ {if (min=="" || $3+0 < min) min=$3+0} END {print min}')
  ww=$(echo "$flush_out" | awk '/IOSchedFlush\/wide-4disk-warm/ {if (min=="" || $3+0 < min) min=$3+0} END {print min}')
  nc=$(echo "$flush_out" | awk '/IOSchedFlush\/narrow-1disk-cold/ {if (min=="" || $3+0 < min) min=$3+0} END {print min}')
  wc=$(echo "$flush_out" | awk '/IOSchedFlush\/wide-4disk-cold/ {if (min=="" || $3+0 < min) min=$3+0} END {print min}')
  nwa=$(echo "$flush_out" | awk '/IOSchedFlush\/narrow-1disk-warm/ {print $7+0; exit}')
  wwa=$(echo "$flush_out" | awk '/IOSchedFlush\/wide-4disk-warm/ {print $7+0; exit}')
  if [ -z "$nw" ] || [ -z "$ww" ] || [ -z "$nc" ] || [ -z "$wc" ]; then
    echo "bench: could not parse BenchmarkIOSchedFlush output" >&2
    exit 1
  fi
  if [ "$nwa" != "0" ] || [ "$wwa" != "0" ]; then
    echo "bench: warm IOSchedFlush arms allocate (narrow=$nwa wide=$wwa allocs/op), want 0" >&2
    exit 1
  fi
  awk -v single="$single" -v demand="$demand" -v scanedf="$scanedf" \
      -v nw="$nw" -v ww="$ww" -v nc="$nc" -v wc="$wc" -v ratio="$ratio" \
      -v cpus="$cpus" -v gov="$goversion" 'BEGIN {
    printf "{\n"
    printf "  \"benchmark\": \"BenchmarkStripedRead + BenchmarkIOSchedFlush\",\n"
    printf "  \"workload\": {\"streams\": 8, \"frames\": 30, \"stripe_width\": 4},\n"
    printf "  \"host_ns_per_op\": {\"single_demand\": %d, \"striped_demand\": %d, \"striped_scan_edf\": %d, \"flush_narrow_1disk_warm\": %d, \"flush_wide_4disk_warm\": %d},\n", single, demand, scanedf, nw, ww
    printf "  \"cold_pool_ns\": {\"flush_narrow_1disk\": %d, \"flush_wide_4disk\": %d},\n", nc, wc
    printf "  \"allocs_per_op\": {\"flush_narrow_1disk_warm\": 0, \"flush_wide_4disk_warm\": 0},\n"
    printf "  \"scheduled_vs_demand_gated_ratio\": %.3f,\n", ratio
    printf "  \"cpus\": %d,\n", cpus
    printf "  \"go\": \"%s\"\n", gov
    printf "}\n"
  }' > "$out"
  ;;
pr8)
  # The engine-step benchmark runs its own iteration count like pr7's
  # flush arms: the warm steady state must amortize first-use buffer
  # growth to a reported 0 allocs/op even under a short BENCHTIME.
  bench_out=$(go test -run '^$' -bench 'BenchmarkEngineStep' -benchmem -benchtime "${STEP_BENCHTIME:-2000x}" -count "${BENCHCOUNT:-1}" ./internal/core/)
  echo "$bench_out"
  narrow=$(echo "$bench_out" | awk '/BenchmarkEngineStep\/narrow-4/ {if (min=="" || $3+0 < min) min=$3+0} END {print min}')
  wide=$(echo "$bench_out" | awk '/BenchmarkEngineStep\/wide-256/ {if (min=="" || $3+0 < min) min=$3+0} END {print min}')
  na=$(echo "$bench_out" | awk '/BenchmarkEngineStep\/narrow-4/ {print $7+0; exit}')
  wa=$(echo "$bench_out" | awk '/BenchmarkEngineStep\/wide-256/ {print $7+0; exit}')
  if [ -z "$narrow" ] || [ -z "$wide" ]; then
    echo "bench: could not parse BenchmarkEngineStep output" >&2
    exit 1
  fi
  if [ "$na" != "0" ] || [ "$wa" != "0" ]; then
    echo "bench: engine step arms allocate (narrow=$na wide=$wa allocs/op), want 0" >&2
    exit 1
  fi
  awk -v narrow="$narrow" -v wide="$wide" -v cpus="$cpus" -v gov="$goversion" 'BEGIN {
    printf "{\n"
    printf "  \"benchmark\": \"BenchmarkEngineStep\",\n"
    printf "  \"workload\": {\"runs\": \"no-op engineRun fakes\", \"narrow_sessions\": 4, \"wide_sessions\": 256, \"batch\": \"all sessions due every step\"},\n"
    printf "  \"host_ns_per_op\": {\"engine_step_narrow_4\": %d, \"engine_step_wide_256\": %d},\n", narrow, wide
    printf "  \"allocs_per_op\": {\"engine_step_narrow_4\": 0, \"engine_step_wide_256\": 0},\n"
    printf "  \"per_session_ns\": {\"wide_256\": %.1f},\n", wide / 256
    printf "  \"cpus\": %d,\n", cpus
    printf "  \"go\": \"%s\"\n", gov
    printf "}\n"
  }' > "$out"
  ;;
pr9)
  # Like pr8, the step benchmark controls its own iteration count so the
  # warm steady state reports 0 allocs/op under any BENCHTIME.
  bench_out=$(go test -run '^$' -bench 'BenchmarkEngineStepSharded' -benchmem -benchtime "${SHARD_BENCHTIME:-300x}" -count "${BENCHCOUNT:-1}" ./internal/core/)
  echo "$bench_out"
  declare -A ns allocs
  for n in 256 1024 4096; do
    for w in 1 4; do
      key="${n}_${w}"
      ns[$key]=$(echo "$bench_out" | awk -v pat="BenchmarkEngineStepSharded/sessions-${n}-workers-${w}" \
        '$0 ~ pat {if (min=="" || $3+0 < min) min=$3+0} END {print min}')
      allocs[$key]=$(echo "$bench_out" | awk -v pat="BenchmarkEngineStepSharded/sessions-${n}-workers-${w}" \
        '$0 ~ pat {print $7+0; exit}')
      if [ -z "${ns[$key]}" ]; then
        echo "bench: could not parse BenchmarkEngineStepSharded sessions-${n}-workers-${w}" >&2
        exit 1
      fi
      if [ "${allocs[$key]}" != "0" ]; then
        echo "bench: sharded step arm sessions-${n}-workers-${w} allocates ${allocs[$key]} allocs/op, want 0" >&2
        exit 1
      fi
    done
  done
  speedup_enforced=false
  if [ "$cpus" -ge 2 ]; then
    speedup_enforced=true
    ok=$(awk -v s="${ns[1024_1]}" -v p="${ns[1024_4]}" 'BEGIN {print (p > 0 && s / p >= 2.0) ? "yes" : "no"}')
    if [ "$ok" != "yes" ]; then
      echo "bench: 4-worker step speedup at 1024 sessions below 2x (serial=${ns[1024_1]}ns sharded=${ns[1024_4]}ns, cpus=$cpus)" >&2
      exit 1
    fi
  fi
  # The virtual side is the determinism proof: the Zipf tenancy rerun
  # with EngineWorkers 2 and 4 must fingerprint byte-identical to serial.
  exp_out=$(go run ./cmd/avbench -exp zipf -frames 30 -sessions 1000)
  echo "$exp_out"
  # Arm rows follow the "workers ..." header (the clip table above also
  # has rows starting with a bare number):
  #   workers wall MB/s misses seeks saved maxbatch fingerprint identical
  read -r mbs saved <<<"$(echo "$exp_out" | awk 'arms && /^1  /{print $3, $6; exit} /^workers /{arms=1}')"
  ident2=$(echo "$exp_out" | awk 'arms && /^2  /{print $NF; exit} /^workers /{arms=1}')
  ident4=$(echo "$exp_out" | awk 'arms && /^4  /{print $NF; exit} /^workers /{arms=1}')
  if [ -z "$mbs" ] || [ -z "$ident2" ] || [ -z "$ident4" ]; then
    echo "bench: could not parse zipf experiment output" >&2
    exit 1
  fi
  if [ "$ident2" != "yes" ] || [ "$ident4" != "yes" ]; then
    echo "bench: sharded engine arms not byte-identical to serial (workers2=$ident2 workers4=$ident4)" >&2
    exit 1
  fi
  awk -v s256="${ns[256_1]}" -v p256="${ns[256_4]}" \
      -v s1k="${ns[1024_1]}" -v p1k="${ns[1024_4]}" \
      -v s4k="${ns[4096_1]}" -v p4k="${ns[4096_4]}" \
      -v enforced="$speedup_enforced" -v mbs="$mbs" -v saved="$saved" \
      -v cpus="$cpus" -v gov="$goversion" 'BEGIN {
    printf "{\n"
    printf "  \"benchmark\": \"BenchmarkEngineStepSharded\",\n"
    printf "  \"workload\": {\"runs\": \"busy engineRun fakes, ~400-iteration spin per tick\", \"sessions\": [256, 1024, 4096], \"workers\": [1, 4], \"batch\": \"all sessions due every step\"},\n"
    printf "  \"host_ns_per_op\": {\"step_serial_256\": %d, \"step_sharded4_256\": %d, \"step_serial_1024\": %d, \"step_sharded4_1024\": %d, \"step_serial_4096\": %d, \"step_sharded4_4096\": %d},\n", s256, p256, s1k, p1k, s4k, p4k
    printf "  \"allocs_per_op\": {\"step_serial_1024\": 0, \"step_sharded4_1024\": 0},\n"
    printf "  \"per_session_ns\": {\"serial_1024\": %.1f, \"sharded4_1024\": %.1f},\n", s1k / 1024, p1k / 1024
    printf "  \"speedup_4workers\": {\"sessions_256\": %.3f, \"sessions_1024\": %.3f, \"sessions_4096\": %.3f},\n", s256 / p256, s1k / p1k, s4k / p4k
    printf "  \"speedup_enforced\": %s,\n", enforced
    printf "  \"virtual\": {\n"
    printf "    \"experiment\": \"avbench -exp zipf -frames 30 -sessions 1000\",\n"
    printf "    \"identical_to_serial\": {\"workers_2\": \"yes\", \"workers_4\": \"yes\"},\n"
    printf "    \"mb_per_s\": %s,\n", mbs
    printf "    \"seeks_saved\": %s\n", saved
    printf "  },\n"
    printf "  \"cpus\": %d,\n", cpus
    printf "  \"go\": \"%s\"\n", gov
    printf "}\n"
  }' > "$out"
  ;;
pr10)
  # Warm pool-hit path: a read served from a resident chunk costs no
  # device time and must cost no allocations either.  The benchmark
  # controls its own iteration count so first-touch pool growth is
  # amortized out of the reported allocs/op.
  bench_out=$(go test -run '^$' -bench 'BenchmarkPoolHit' -benchmem -benchtime "${POOL_BENCHTIME:-100000x}" -count "${BENCHCOUNT:-1}" ./internal/storage/)
  echo "$bench_out"
  hit=$(echo "$bench_out" | awk '/BenchmarkPoolHit/ {if (min=="" || $3+0 < min) min=$3+0} END {print min}')
  hita=$(echo "$bench_out" | awk '/BenchmarkPoolHit/ {print $7+0; exit}')
  if [ -z "$hit" ]; then
    echo "bench: could not parse BenchmarkPoolHit output" >&2
    exit 1
  fi
  if [ "$hita" != "0" ]; then
    echo "bench: warm pool-hit path allocates ($hita allocs/op), want 0" >&2
    exit 1
  fi
  # The virtual side: the Zipf tenancy, unpooled sweep then pooled
  # sweep.  Both tables start with a "workers" header; the clip table
  # above also has numeric first columns, so gate on the headers.
  exp_out=$(go run ./cmd/avbench -exp zipf -frames 30 -sessions 1000)
  echo "$exp_out"
  base_mbs=$(echo "$exp_out" | awk '/^workers /{arms++} arms==1 && /^1  /{print $3; exit}')
  read -r pool_mbs pool_hit cohort <<<"$(echo "$exp_out" | awk '/^workers /{arms++} arms==2 && /^1  /{print $3, $5, $7; exit}')"
  pident2=$(echo "$exp_out" | awk '/^workers /{arms++} arms==2 && /^2  /{print $NF; exit}')
  pident4=$(echo "$exp_out" | awk '/^workers /{arms++} arms==2 && /^4  /{print $NF; exit}')
  if [ -z "$base_mbs" ] || [ -z "$pool_mbs" ] || [ -z "$pident2" ] || [ -z "$pident4" ]; then
    echo "bench: could not parse zipf pooled experiment output" >&2
    exit 1
  fi
  if [ "$pident2" != "yes" ] || [ "$pident4" != "yes" ]; then
    echo "bench: pooled arms not byte-identical to serial (workers2=$pident2 workers4=$pident4)" >&2
    exit 1
  fi
  cohort_ok=$(echo "$cohort" | awk '{gsub(/%/, ""); print ($1 + 0 > 50) ? "yes" : "no"}')
  if [ "$cohort_ok" != "yes" ]; then
    echo "bench: cohort pool hit rate $cohort not above 50%" >&2
    exit 1
  fi
  # Virtual throughput is deterministic, so both comparisons hold on
  # any host: the pool must beat this run's unpooled arm and the
  # committed PR 9 baseline.
  mbs_ok=$(awk -v p="$pool_mbs" -v b="$base_mbs" 'BEGIN {print (p + 0 > b + 0) ? "yes" : "no"}')
  if [ "$mbs_ok" != "yes" ]; then
    echo "bench: pooled throughput $pool_mbs MB/s not above unpooled $base_mbs MB/s" >&2
    exit 1
  fi
  pr9_ok=$(awk -v p="$pool_mbs" 'BEGIN {print (p + 0 > 87.31) ? "yes" : "no"}')
  if [ "$pr9_ok" != "yes" ]; then
    echo "bench: pooled throughput $pool_mbs MB/s not above the PR 9 baseline 87.31 MB/s" >&2
    exit 1
  fi
  awk -v hit="$hit" -v base="$base_mbs" -v pool="$pool_mbs" \
      -v phit="$pool_hit" -v cohort="$cohort" \
      -v cpus="$cpus" -v gov="$goversion" 'BEGIN {
    gsub(/%/, "", phit); gsub(/%/, "", cohort)
    printf "{\n"
    printf "  \"benchmark\": \"BenchmarkPoolHit\",\n"
    printf "  \"workload\": {\"pool\": \"capacity 8, lookahead 4, staged commit\", \"read\": \"warm hit on a resident chunk\"},\n"
    printf "  \"host_ns_per_op\": {\"pool_hit\": %d},\n", hit
    printf "  \"allocs_per_op\": {\"pool_hit\": 0},\n"
    printf "  \"virtual\": {\n"
    printf "    \"experiment\": \"avbench -exp zipf -frames 30 -sessions 1000\",\n"
    printf "    \"unpooled_mb_per_s\": %s,\n", base
    printf "    \"pooled_mb_per_s\": %s,\n", pool
    printf "    \"pr9_baseline_mb_per_s\": 87.31,\n"
    printf "    \"pool_hit_rate_pct\": %s,\n", phit
    printf "    \"cohort_hit_rate_pct\": %s,\n", cohort
    printf "    \"identical_to_serial\": {\"workers_2\": \"yes\", \"workers_4\": \"yes\"}\n"
    printf "  },\n"
    printf "  \"cpus\": %d,\n", cpus
    printf "  \"go\": \"%s\"\n", gov
    printf "}\n"
  }' > "$out"
  ;;
gate)
  # Trajectory gate: every committed baseline is re-measured on this
  # host and compared metric-by-metric.  Fresh measurements go to a
  # temp dir so the committed baselines are left untouched.
  status=0
  baselines=$(git ls-files 'BENCH_*.json')
  if [ -z "$baselines" ]; then
    echo "bench gate: no committed BENCH_*.json baselines" >&2
    exit 2
  fi
  tmpdir=$(mktemp -d)
  trap 'rm -rf "$tmpdir"' EXIT
  for base in $baselines; do
    t="${base#BENCH_}"
    t="${t%.json}"
    echo "=== gate: re-measuring $t against $base ==="
    if ! bash "$0" "$t" "$tmpdir/BENCH_${t}.json" >"$tmpdir/${t}.log" 2>&1; then
      echo "bench gate: measuring $t failed:" >&2
      cat "$tmpdir/${t}.log" >&2
      status=1
      continue
    fi
    if ! go run ./cmd/benchgate -old "$base" -new "$tmpdir/BENCH_${t}.json" -ratio "${BENCH_GATE_RATIO:-1.10}"; then
      status=1
    fi
  done
  exit $status
  ;;
*)
  echo "bench: unknown tag \"$tag\" (known: pr3, pr4, pr5, pr6, pr7, pr8, pr9, pr10, gate)" >&2
  exit 2
  ;;
esac

echo "wrote $out:"
cat "$out"
