package avdb_test

import (
	"fmt"
	"log"

	"avdb"
	"avdb/internal/activities"
	"avdb/internal/activity"
	"avdb/internal/avtime"
	"avdb/internal/core"
	"avdb/internal/media"
	"avdb/internal/sched"
	"avdb/internal/schema"
	"avdb/internal/synth"
)

// Example runs the paper's §4.3 program through the façade: define a
// class, store a newscast, query for a reference, build the activity
// pipeline and stream it to the application.
func Example() {
	db, err := avdb.OpenDefault("example", avdb.PlatformConfig{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	quality, err := avdb.ParseVideoQuality("32x24x8@30")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := db.DefineClass("SimpleNewscast", "", []schema.AttrDef{
		{Name: "title", Kind: schema.KindString},
		{Name: "videoTrack", Kind: schema.KindMedia, MediaKind: media.KindVideo, VideoQuality: quality},
	}); err != nil {
		log.Fatal(err)
	}
	obj, err := db.NewObject("SimpleNewscast")
	if err != nil {
		log.Fatal(err)
	}
	clip := synth.Video(media.TypeRawVideo30, synth.PatternMotion, 32, 24, 8, 30, 1)
	if err := db.SetAttr(obj.OID(), "title", schema.String("60 Minutes")); err != nil {
		log.Fatal(err)
	}
	if err := db.SetAttr(obj.OID(), "videoTrack", schema.Media(clip)); err != nil {
		log.Fatal(err)
	}

	sess, err := db.Connect("viewer", "lan0")
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	dbSource, err := activities.NewVideoReader("dbSource", activity.AtDatabase, media.TypeRawVideo30)
	if err != nil {
		log.Fatal(err)
	}
	if err := sess.Install(dbSource, core.ResourcesForVideo(quality)); err != nil {
		log.Fatal(err)
	}
	appSink := activities.NewVideoWindow("appSink", activity.AtApplication, quality, 100*avtime.Millisecond)
	if err := sess.Install(appSink, sched.Resources{}); err != nil {
		log.Fatal(err)
	}
	if _, err := sess.Connect(dbSource, "out", appSink, "in", quality.DataRate()); err != nil {
		log.Fatal(err)
	}
	myNews, err := db.SelectOne(`select SimpleNewscast where title = "60 Minutes"`)
	if err != nil {
		log.Fatal(err)
	}
	if err := sess.BindValue(myNews, "videoTrack", dbSource, "out", 0); err != nil {
		log.Fatal(err)
	}
	pb, err := sess.Start()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := pb.Wait(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference: %v\n", myNews)
	fmt.Printf("frames shown: %d\n", appSink.FramesShown())
	// Output:
	// reference: oid:1
	// frames shown: 30
}

// ExampleRetrieveAtQuality serves a stored scalable value at a reduced
// quality factor by ignoring encoded data.
func ExampleRetrieveAtQuality() {
	db, err := avdb.Open(avdb.Config{})
	if err != nil {
		log.Fatal(err)
	}
	clip := synth.Video(media.TypeRawVideo30, synth.PatternMotion, 64, 48, 8, 30, 2)
	stored, err := db.ImportVideo(clip, avdb.RepresentationHints{Scalable: true})
	if err != nil {
		log.Fatal(err)
	}
	low, _ := avdb.ParseVideoQuality("16x12x8@30")
	_, info, err := avdb.RetrieveAtQuality(stored, low)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(info.Method)
	// Output:
	// layer-drop
}
