// Quickstart: the paper's §4.3 program, end to end.
//
// It opens an AV database on a simulated platform, defines the
// SimpleNewscast class, captures and stores a broadcast, queries for it,
// and plays the video back to an application window over the network —
// statements 1-6 of the paper, with the asynchronous completion
// notification of §3.3.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"avdb/internal/activities"
	"avdb/internal/activity"
	"avdb/internal/avtime"
	"avdb/internal/core"
	"avdb/internal/media"
	"avdb/internal/sched"
	"avdb/internal/schema"
	"avdb/internal/synth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// An AV database on a default platform: two disks, a videodisc
	// jukebox, converters, an effects processor, one client LAN link.
	db, err := core.OpenDefault("quickstart", core.PlatformConfig{Seed: 42})
	if err != nil {
		return err
	}

	// class SimpleNewscast { String title; ... VideoValue videoTrack }
	quality, err := media.ParseVideoQuality("64x48x8@30")
	if err != nil {
		return err
	}
	if _, err := db.DefineClass("SimpleNewscast", "", []schema.AttrDef{
		{Name: "title", Kind: schema.KindString},
		{Name: "broadcastSource", Kind: schema.KindString},
		{Name: "whenBroadcast", Kind: schema.KindDate},
		{Name: "videoTrack", Kind: schema.KindMedia, MediaKind: media.KindVideo, VideoQuality: quality},
	}); err != nil {
		return err
	}

	// Capture 3 seconds of a broadcast (synthetic camera) and store it,
	// placed explicitly on disk0.
	clip := synth.Video(media.TypeRawVideo30, synth.PatternMotion, 64, 48, 8, 90, 7)
	obj, err := db.NewObject("SimpleNewscast")
	if err != nil {
		return err
	}
	for attr, d := range map[string]schema.Datum{
		"title":           schema.String("60 Minutes"),
		"broadcastSource": schema.String("CBS"),
		"whenBroadcast":   schema.Date(time.Date(1993, 4, 19, 20, 0, 0, 0, time.UTC)),
		"videoTrack":      schema.Media(clip),
	} {
		if err := db.SetAttr(obj.OID(), attr, d); err != nil {
			return err
		}
	}
	seg, err := db.PlaceMedia(obj.OID(), "videoTrack", "disk0", 2*media.MBPerSecond)
	if err != nil {
		return err
	}
	fmt.Printf("stored %q: %v\n", "60 Minutes", seg)

	// A client session over the LAN.
	sess, err := db.Connect("viewer", "lan0")
	if err != nil {
		return err
	}
	defer sess.Close()

	// 1  dbSource = new activity VideoSource for SimpleNewscast.videoTrack
	dbSource, err := activities.NewVideoReader("dbSource", activity.AtDatabase, media.TypeRawVideo30)
	if err != nil {
		return err
	}
	if err := sess.Install(dbSource, core.ResourcesForVideo(quality)); err != nil {
		return err
	}
	// 2  appSink = new activity VideoWindow quality 64x48x8@30
	appSink := activities.NewVideoWindow("appSink", activity.AtApplication, quality, 100*avtime.Millisecond)
	if err := sess.Install(appSink, sched.Resources{}); err != nil {
		return err
	}
	// 3  videoStream = new connection from dbSource.out to appSink.in
	if _, err := sess.Connect(dbSource, "out", appSink, "in", quality.DataRate()); err != nil {
		return err
	}
	// 4  myNews = select SimpleNewscast where (...)
	myNews, err := db.SelectOne(`select SimpleNewscast where (title = "60 Minutes" and whenBroadcast = 1993-04-19)`)
	if err != nil {
		return err
	}
	fmt.Printf("query returned reference %v\n", myNews)
	// 5  bind myNews.videoTrack to dbSource
	if err := sess.BindValue(myNews, "videoTrack", dbSource, "out", 2*media.MBPerSecond); err != nil {
		return err
	}
	// Event notification: progress every second of material, and the end.
	if err := dbSource.Catch(activity.EventEachFrame, func(e activity.EventInfo) {
		if e.Seq%30 == 0 {
			fmt.Printf("  EACH_FRAME seq=%d at %v\n", e.Seq, e.At)
		}
	}); err != nil {
		return err
	}
	if err := dbSource.Catch(activity.EventLastFrame, func(e activity.EventInfo) {
		fmt.Printf("  LAST_FRAME seq=%d\n", e.Seq)
	}); err != nil {
		return err
	}
	// 6  start videoStream — returns immediately; the client proceeds.
	pb, err := sess.Start()
	if err != nil {
		return err
	}
	fmt.Println("stream started; client continues with other work...")
	stats, err := pb.Wait()
	if err != nil {
		return err
	}
	fmt.Printf("\nplayback complete: %d frames shown over %v of world time\n",
		appSink.FramesShown(), stats.Elapsed)
	fmt.Printf("deadline statistics: %v\n", appSink.Monitor())
	return nil
}
