// Virtual world AV database — the paper's Scenario II and Fig. 4.
//
// "An AV database supporting virtual worlds is provided as a network
// service. ... Users interactively move through the virtual world by
// querying the database.  As the user changes position, a new
// visualization of the world is rendered at the database site, resulting
// in a sequence of images (an AV value) being sent to the user."
//
// The example walks a user through a museum whose north wall projects a
// stored video clip, and runs the walkthrough under BOTH activity graphs
// of Fig. 4:
//
//   - render at the client (the client has 3D hardware): the database
//     streams only the small video texture;
//   - render at the database (thin client): the database renders every
//     view and streams full raster frames.
//
// It prints the traffic both configurations generate and dumps one
// rendered frame as ASCII art.
//
//	go run ./examples/virtualworld
package main

import (
	"fmt"
	"log"

	"avdb/internal/activities"
	"avdb/internal/activity"
	"avdb/internal/avtime"
	"avdb/internal/media"
	"avdb/internal/netsim"
	"avdb/internal/render"
	"avdb/internal/sched"
	"avdb/internal/synth"
)

const (
	viewW, viewH = 160, 120
	steps        = 90
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	texture := synth.Video(media.TypeRawVideo30, synth.PatternMotion, 64, 48, 8, steps, 77)

	for _, atClient := range []bool{true, false} {
		frames, wire, last, err := walkthrough(texture, atClient)
		if err != nil {
			return err
		}
		where := "database"
		if atClient {
			where = "client"
		}
		fmt.Printf("render at %-8s  %3d frames   %8d bytes on the wire   (%.0f bytes/frame)\n",
			where, frames, wire, float64(wire)/float64(frames))
		if !atClient {
			fmt.Println("\nlast rendered view (database-side rendering):")
			fmt.Println(asciiFrame(last, 80, 30))
		}
	}
	return nil
}

// walkthrough runs the same user path under one of the Fig. 4 graphs and
// reports delivered frames and network traffic.
func walkthrough(texture *media.VideoValue, renderAtClient bool) (int, int64, *media.Frame, error) {
	world := render.Museum()
	renderer := render.NewRenderer(world, viewW, viewH)
	link := netsim.NewLink("wan", 10*media.MBPerSecond, 2*avtime.Millisecond, 0, 5)

	renderLoc := activity.AtDatabase
	if renderAtClient {
		renderLoc = activity.AtApplication
	}

	// The stored video texture lives with the database.
	texSrc, err := activities.NewVideoReader("videosrc", activity.AtDatabase, media.TypeRawVideo30)
	if err != nil {
		return 0, 0, nil, err
	}
	if err := texSrc.Bind(texture, "out"); err != nil {
		return 0, 0, nil, err
	}
	// The user's movement originates at the application.
	start := render.Camera{X: 8, Y: 7, Angle: -1.2}
	move, err := activities.NewMoveSource("move", activity.AtApplication, start,
		activities.OrbitPolicy(world, 0.06, 0.015), steps)
	if err != nil {
		return 0, 0, nil, err
	}
	ra := activities.NewRenderActivity("render", renderLoc, renderer)
	view := activities.NewVideoWindow("view", activity.AtApplication, media.VideoQuality{}, avtime.Second)
	view.KeepFrames()

	g := activity.NewGraph("vworld")
	for _, a := range []activity.Activity{texSrc, move, ra, view} {
		if err := g.Add(a); err != nil {
			return 0, 0, nil, err
		}
	}
	var conns []*netsim.Conn
	connect := func(from activity.Activity, fp string, to activity.Activity, tp string) error {
		if from.Location() == to.Location() {
			_, err := g.Connect(from, fp, to, tp)
			return err
		}
		nc, err := link.Connect(2 * media.MBPerSecond)
		if err != nil {
			return err
		}
		conns = append(conns, nc)
		_, err = g.ConnectVia(from, fp, to, tp, nc)
		return err
	}
	if err := connect(texSrc, "out", ra, "video"); err != nil {
		return 0, 0, nil, err
	}
	if err := connect(move, "out", ra, "move"); err != nil {
		return 0, 0, nil, err
	}
	if err := connect(ra, "out", view, "in"); err != nil {
		return 0, 0, nil, err
	}
	if err := g.Start(); err != nil {
		return 0, 0, nil, err
	}
	if _, err := g.Run(activity.RunConfig{Clock: sched.NewVirtualClock(0)}); err != nil {
		return 0, 0, nil, err
	}
	var wire int64
	for _, c := range conns {
		wire += c.BytesCarried()
		c.Close()
	}
	frames := view.Frames()
	var last *media.Frame
	if len(frames) > 0 {
		last = frames[len(frames)-1]
	}
	return view.FramesShown(), wire, last, nil
}

// asciiFrame renders a luminance frame as characters.
func asciiFrame(f *media.Frame, cols, rows int) string {
	if f == nil {
		return "(no frame)"
	}
	ramp := []byte(" .:-=+*#%@")
	out := make([]byte, 0, (cols+1)*rows)
	for r := 0; r < rows; r++ {
		y := r * f.Height / rows
		for c := 0; c < cols; c++ {
			x := c * f.Width / cols
			out = append(out, ramp[int(f.At(x, y))*len(ramp)/256])
		}
		out = append(out, '\n')
	}
	return string(out)
}
