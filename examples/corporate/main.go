// Corporate AV database — the paper's Scenario I.
//
// A software producer's video collection: promotional clips, project
// presentations and archived broadcasts managed by one AV database.
// The example exercises the database the way the scenario describes:
//
//  1. a catalog of Newscast objects with temporally composed clips
//     (video + bilingual narration + subtitles), queried by attribute;
//
//  2. synchronized playback of a bilingual newscast through a
//     MultiSource → MultiSink composite stream (§4.3's second program);
//
//  3. non-linear editing: mixing two clips in real time on the shared
//     video-effects processor, with the values placed on separate disks
//     so both streams can run simultaneously (§3.3 "data placement"),
//     and recording the mix back into the database;
//
//  4. version control: the edit is checked in as a new version of the
//     promotional video;
//
//  5. archival: the master is moved to the analog videodisc jukebox.
//
//     go run ./examples/corporate
package main

import (
	"fmt"
	"log"
	"time"

	"avdb/internal/activities"
	"avdb/internal/activity"
	"avdb/internal/avtime"
	"avdb/internal/core"
	"avdb/internal/media"
	"avdb/internal/query"
	"avdb/internal/sched"
	"avdb/internal/schema"
	"avdb/internal/synth"
	"avdb/internal/temporal"
)

const (
	w, h, fps = 64, 48, 30
	seconds   = 2
	frames    = seconds * fps
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	db, err := core.OpenDefault("corporate", core.PlatformConfig{Seed: 1993})
	if err != nil {
		return err
	}
	if err := defineCatalog(db); err != nil {
		return err
	}
	oid, err := loadArchive(db)
	if err != nil {
		return err
	}
	if err := bilingualPlayback(db, oid); err != nil {
		return err
	}
	if err := editAndRecord(db); err != nil {
		return err
	}
	return archiveToJukebox(db, oid)
}

// defineCatalog registers the Newscast class of §4.1 and indexes it.
func defineCatalog(db *core.Database) error {
	if _, err := db.DefineClass("MediaObject", "", []schema.AttrDef{
		{Name: "title", Kind: schema.KindString},
		{Name: "keywords", Kind: schema.KindString},
	}); err != nil {
		return err
	}
	if _, err := db.DefineClass("Newscast", "MediaObject", []schema.AttrDef{
		{Name: "broadcastSource", Kind: schema.KindString},
		{Name: "whenBroadcast", Kind: schema.KindDate},
		{Name: "clip", Kind: schema.KindTComp, Tracks: []schema.TrackDef{
			{Name: "videoTrack", MediaKind: media.KindVideo},
			{Name: "englishTrack", MediaKind: media.KindAudio},
			{Name: "frenchTrack", MediaKind: media.KindAudio},
			{Name: "subtitleTrack", MediaKind: media.KindText},
		}},
	}); err != nil {
		return err
	}
	if _, err := db.DefineClass("Promo", "MediaObject", []schema.AttrDef{
		{Name: "product", Kind: schema.KindString},
		{Name: "videoTrack", Kind: schema.KindMedia, MediaKind: media.KindVideo},
	}); err != nil {
		return err
	}
	if err := db.CreateIndex("Newscast", "title", query.HashIndex); err != nil {
		return err
	}
	return db.CreateIndex("Newscast", "whenBroadcast", query.BTreeIndex)
}

// loadArchive stores a week of captured broadcasts and returns the
// reference of the one we will play back.
func loadArchive(db *core.Database) (schema.OID, error) {
	var target schema.OID
	for day := 19; day <= 23; day++ {
		clip := temporal.NewComposite("clip")
		if err := clip.Add("videoTrack",
			synth.Video(media.TypeRawVideo30, synth.PatternMotion, w, h, 8, frames, int64(day))); err != nil {
			return 0, err
		}
		english, err := synth.Speech(media.AudioQualityVoice, seconds, int64(day))
		if err != nil {
			return 0, err
		}
		if err := clip.Add("englishTrack", english); err != nil {
			return 0, err
		}
		french, err := synth.Speech(media.AudioQualityVoice, seconds, int64(day)+100)
		if err != nil {
			return 0, err
		}
		if err := clip.Add("frenchTrack", french); err != nil {
			return 0, err
		}
		subs, err := synth.Subtitles([]string{"good evening", "goodnight"}, seconds*500)
		if err != nil {
			return 0, err
		}
		if err := clip.Add("subtitleTrack", subs); err != nil {
			return 0, err
		}

		o, err := db.NewObject("Newscast")
		if err != nil {
			return 0, err
		}
		for attr, d := range map[string]schema.Datum{
			"title":           schema.String("60 Minutes"),
			"broadcastSource": schema.String("CBS"),
			"keywords":        schema.String("weekly news magazine"),
			"whenBroadcast":   schema.Date(time.Date(1993, 4, day, 20, 0, 0, 0, time.UTC)),
			"clip":            schema.TComp(clip),
		} {
			if err := db.SetAttr(o.OID(), attr, d); err != nil {
				return 0, err
			}
		}
		if day == 19 {
			target = o.OID()
		}
	}
	n, err := db.Select(`select Newscast where whenBroadcast >= 1993-04-19 and whenBroadcast <= 1993-04-23`)
	if err != nil {
		return 0, err
	}
	fmt.Printf("archive loaded: %d newscasts in the catalog\n", len(n))
	return target, nil
}

// bilingualPlayback runs §4.3's second program: a MultiSource/MultiSink
// pair keeping video, English narration and subtitles synchronized over
// one composite connection.
func bilingualPlayback(db *core.Database, _ schema.OID) error {
	sess, err := db.Connect("newsroom-app", "lan0")
	if err != nil {
		return err
	}
	defer sess.Close()

	// dbSource = new activity MultiSource
	//   install (new activity VideoSource for Newscast.clip.videoTrack)
	//   install (new activity AudioSource for Newscast.clip.englishTrack)
	dbSource := activities.NewMultiSource("dbSource", activity.AtDatabase)
	vr, err := activities.NewVideoReader("videoTrack", activity.AtDatabase, media.TypeRawVideo30)
	if err != nil {
		return err
	}
	vr.SetLatency(sched.NewLatency(10*avtime.Millisecond, 5*avtime.Millisecond, 51))
	ar, err := activities.NewAudioReader("englishTrack", activity.AtDatabase, media.TypeVoiceAudio)
	if err != nil {
		return err
	}
	ar.SetLatency(sched.NewLatency(2*avtime.Millisecond, avtime.Millisecond, 52))
	sr := activities.NewSubtitleReader("subtitleTrack", activity.AtDatabase)
	for _, a := range []activity.Activity{vr, ar, sr} {
		if err := dbSource.Install(a); err != nil {
			return err
		}
	}
	if err := activities.SealMultiSource(dbSource); err != nil {
		return err
	}

	// appSink = new activity MultiSink
	appSink := activities.NewMultiSink("appSink", activity.AtApplication)
	win := activities.NewVideoWindow("videoTrack", activity.AtApplication, media.VideoQuality{}, 60*avtime.Millisecond)
	dac, err := activities.NewAudioSink("englishTrack", activity.AtApplication, media.TypeVoiceAudio, media.AudioQualityVoice, 60*avtime.Millisecond)
	if err != nil {
		return err
	}
	subs := activities.NewSubtitleSink("subtitleTrack", activity.AtApplication)
	for _, a := range []activity.Activity{win, dac, subs} {
		if err := appSink.Install(a); err != nil {
			return err
		}
	}
	if err := activities.SealMultiSink(appSink); err != nil {
		return err
	}

	if err := sess.Install(dbSource, sched.Resources{Buffers: 3}); err != nil {
		return err
	}
	if err := sess.Install(appSink, sched.Resources{}); err != nil {
		return err
	}
	// compositeStream = new connection from dbSource.out to appSink.in
	if _, err := sess.Connect(dbSource, "out", appSink, "in", media.MBPerSecond); err != nil {
		return err
	}
	// myNews = select Newscast where (title and date)
	myNews, err := db.SelectOne(`select Newscast where (title = "60 Minutes" and whenBroadcast = 1993-04-19)`)
	if err != nil {
		return err
	}
	// bind myNews.clip to dbSource ... start compositeStream
	if err := sess.BindClip(myNews, "clip", dbSource, 0); err != nil {
		return err
	}
	pb, err := sess.Start()
	if err != nil {
		return err
	}
	if _, err := pb.Wait(); err != nil {
		return err
	}
	fmt.Printf("bilingual playback: %d frames, %d audio samples, %d subtitle changes\n",
		win.FramesShown(), dac.SamplesPlayed(), len(subs.Cues()))
	va, aa := win.Arrivals(), dac.Arrivals()
	var worst avtime.WorldTime
	for i := 15; i < min(len(va), len(aa)); i++ {
		s := va[i] - aa[i]
		if s < 0 {
			s = -s
		}
		if s > worst {
			worst = s
		}
	}
	fmt.Printf("worst steady-state A/V skew under composite sync: %v\n", worst)
	return nil
}

// editAndRecord performs a non-linear edit: cross-mix two source clips on
// the effects processor and record the result as a new Promo version.
func editAndRecord(db *core.Database) error {
	sess, err := db.Connect("edit-suite", "lan0")
	if err != nil {
		return err
	}
	defer sess.Close()

	// The edit needs the (expensive, shared) video effects processor.
	if err := sess.AcquireDevice("fx0"); err != nil {
		return err
	}
	fmt.Println("edit suite acquired the effects processor")

	// Two source clips, placed on DIFFERENT disks so both streams can be
	// produced simultaneously.
	clipA := synth.Video(media.TypeRawVideo30, synth.PatternMotion, w, h, 8, frames, 201)
	clipB := synth.Video(media.TypeRawVideo30, synth.PatternChecker, w, h, 8, frames, 202)
	promo, err := db.NewObject("Promo")
	if err != nil {
		return err
	}
	if err := db.SetAttr(promo.OID(), "title", schema.String("Product Launch")); err != nil {
		return err
	}
	if err := db.SetAttr(promo.OID(), "product", schema.String("ObjectBase 2.0")); err != nil {
		return err
	}
	if err := db.SetAttr(promo.OID(), "videoTrack", schema.Media(clipA)); err != nil {
		return err
	}
	segA, err := db.PlaceMedia(promo.OID(), "videoTrack", "disk0", 2*media.MBPerSecond)
	if err != nil {
		return err
	}
	segB, err := db.Storage().Place(clipB, "disk1")
	if err != nil {
		return err
	}
	fmt.Printf("sources placed for simultaneous production: %v / %v\n", segA, segB)

	readerA, err := activities.NewVideoReader("srcA", activity.AtDatabase, media.TypeRawVideo30)
	if err != nil {
		return err
	}
	if err := readerA.Bind(clipA, "out"); err != nil {
		return err
	}
	readerB, err := activities.NewVideoReader("srcB", activity.AtDatabase, media.TypeRawVideo30)
	if err != nil {
		return err
	}
	if err := readerB.Bind(clipB, "out"); err != nil {
		return err
	}
	mixer, err := activities.NewVideoMixer("fx-mix", activity.AtDatabase, []float64{2, 1})
	if err != nil {
		return err
	}
	recorder, err := activities.NewVideoWriter("record", activity.AtDatabase, media.TypeRawVideo30)
	if err != nil {
		return err
	}
	edited := media.NewVideoValue(media.TypeRawVideo30, w, h, 8)
	if err := recorder.Bind(edited, "in"); err != nil {
		return err
	}
	for _, a := range []activity.Activity{readerA, readerB, mixer, recorder} {
		if err := sess.Install(a, sched.Resources{Buffers: 1}); err != nil {
			return err
		}
	}
	for _, c := range []struct {
		from activity.Activity
		fp   string
		to   activity.Activity
		tp   string
	}{
		{readerA, "out", mixer, "in0"},
		{readerB, "out", mixer, "in1"},
		{mixer, "out", recorder, "in"},
	} {
		if _, err := sess.Connect(c.from, c.fp, c.to, c.tp, 0); err != nil {
			return err
		}
	}
	pb, err := sess.Start()
	if err != nil {
		return err
	}
	if _, err := pb.Wait(); err != nil {
		return err
	}
	fmt.Printf("edit rendered: %d mixed frames recorded\n", edited.NumFrames())

	// Check the edit in as version 2 of the promo's video.
	if _, err := db.Versions().Checkin(promo.OID(), "videoTrack", clipA, "camera original"); err != nil {
		return err
	}
	v, err := db.Versions().Checkin(promo.OID(), "videoTrack", edited, "mixed master")
	if err != nil {
		return err
	}
	fmt.Printf("checked in as version %d (%d versions in history)\n",
		v, len(db.Versions().History(promo.OID(), "videoTrack")))
	return nil
}

// archiveToJukebox moves a broadcast's stored video to the analog
// videodisc jukebox — the bulk tier.
func archiveToJukebox(db *core.Database, oid schema.OID) error {
	d, err := db.GetAttr(oid, "clip")
	if err != nil {
		return err
	}
	track, _ := d.TCompVal().Track("videoTrack")
	seg, err := db.Storage().PlaceOnDisc(track.Value, "jukebox0", 2)
	if err != nil {
		return err
	}
	fmt.Printf("archived to the videodisc jukebox: %v\n", seg)
	return nil
}
